// Package replog is the durable half of cross-process replication: a
// segmented write-ahead log plus atomic snapshot files, so a replica
// member killed at any byte offset — `kill -9` mid-record, mid-fsync,
// or mid-snapshot-install — reopens to a consistent prefix of what it
// acknowledged.
//
// The layout of a member's data directory:
//
//	wal-<firstIndex>.log   log segments: a 16-byte header followed by
//	                       length+CRC32C-framed entry records
//	snap-<lastIndex>.snap  snapshots: state machine image + replicated
//	                       ledger, CRC-sealed, written temp+rename
//	meta.bin               term / boot counter, CRC-sealed, temp+rename
//
// Durability rules:
//
//   - Appends become durable per the configured SyncPolicy: SyncAlways
//     fsyncs every append batch, SyncBatch fsyncs on the explicit Sync
//     call a caller makes before acknowledging (one fsync per append
//     frame or propose), SyncNone leaves it to the OS (fast, and honest
//     about what it no longer guarantees).
//   - Snapshots and meta are written to a temp file, fsynced, renamed
//     into place, and the directory fsynced — a crash leaves either the
//     old file or the new one, never a torn hybrid.
//   - On open, the last segment's tail is scanned record by record; a
//     short, mangled, or mis-CRC'd tail record is truncated away (it was
//     never acknowledged — the fsync that would have made it durable is
//     also what orders it before the ack). Corruption anywhere before
//     the tail is an error, not a truncation: that data was acknowledged
//     and silently dropping it would break the replication contract.
//
// The package depends on internal/replica only for the Entry and
// Snapshot types; replica reaches back structurally through its Storage
// interface, which *Store implements.
package replog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
)

// SyncPolicy says when WAL appends are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append batch — maximum durability,
	// one fsync per record in the worst case.
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs only on explicit Sync calls: the caller syncs
	// once per append frame / propose, just before acknowledging, so a
	// multi-entry batch costs one fsync.
	SyncBatch
	// SyncNone never fsyncs; a machine crash may lose acknowledged
	// writes (a process crash alone does not — the page cache survives).
	SyncNone
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("replog: unknown fsync policy %q (always|batch|none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a WAL or Store.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 1 MiB; tests use tiny values to force rotation).
	SegmentBytes int64
	// Crash, if non-nil, arms deterministic self-kill points for the
	// process-kill chaos harness. Production leaves it nil.
	Crash *CrashPoint
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	return o
}

// Stats is a point-in-time counter snapshot of a WAL/Store.
type Stats struct {
	Appends       uint64 // entry records appended
	Syncs         uint64 // fsyncs issued for record durability
	Bytes         uint64 // record bytes appended (headers included)
	TornRecords   uint64 // tail records truncated away at open
	TornBytes     uint64 // bytes those records occupied
	Segments      uint64 // live segments right now
	Rotations     uint64 // segment rotations
	Compactions   uint64 // prefix truncations (snapshot-driven)
	SuffixTruncs  uint64 // suffix truncations (conflict-driven)
	Snapshots     uint64 // snapshots persisted
	SnapshotBytes uint64 // bytes in the latest persisted snapshot
}

type statCounters struct {
	appends      atomic.Uint64
	syncs        atomic.Uint64
	bytes        atomic.Uint64
	tornRecords  atomic.Uint64
	tornBytes    atomic.Uint64
	rotations    atomic.Uint64
	compactions  atomic.Uint64
	suffixTruncs atomic.Uint64
	snapshots    atomic.Uint64
	snapBytes    atomic.Uint64
}

// castagnoli is the CRC32-C table used for every checksum in the
// package (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports acknowledged (non-tail) data that fails
// validation; recovery must not paper over it.
var ErrCorrupt = errors.New("replog: corrupt record before the log tail")

// syncFile fsyncs f, translating the platform error.
func syncFile(f *os.File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("replog: fsync %s: %w", f.Name(), err)
	}
	return nil
}

// syncDir fsyncs a directory so renames and unlinks within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileAtomic writes data to path via a temp file in the same
// directory: write, fsync, rename, fsync the directory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	_, err = tmp.Write(data)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}
