package replog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ffwd/internal/replica"
)

func TestStoreFreshOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "m0")
	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	if rec.Snap != nil || len(rec.Entries) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	if rec.Meta.Boots != 1 {
		t.Fatalf("Boots = %d, want 1", rec.Meta.Boots)
	}
}

func TestStoreRecoversSnapshotPlusSuffix(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEntries(mkEntries(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshot(mkSnap(6)); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := s.Compact(6); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := s.SaveTerm(4); err != nil {
		t.Fatalf("SaveTerm: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	snapsEqual(t, rec.Snap, mkSnap(6))
	// Single segment [1..10] survives compaction whole; recovery drops
	// the covered prefix and returns only the suffix.
	entriesEqual(t, rec.Entries, mkEntries(7, 10))
	if rec.Meta.Term != 4 {
		t.Fatalf("Term = %d, want 4", rec.Meta.Term)
	}
	if rec.Meta.Boots != 2 {
		t.Fatalf("Boots = %d, want 2", rec.Meta.Boots)
	}
}

func TestStoreInstallSnapshotResetsLog(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEntries(mkEntries(1, 5)); err != nil {
		t.Fatal(err)
	}
	// A snapshot transfer from the leader supersedes the local log.
	if err := s.InstallSnapshot(mkSnap(50)); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if err := s.AppendEntries([]replica.Entry{mkEntry(51)}); err != nil {
		t.Fatalf("append after install: %v", err)
	}
	s.Close()

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	snapsEqual(t, rec.Snap, mkSnap(50))
	entriesEqual(t, rec.Entries, []replica.Entry{mkEntry(51)})
}

// A WAL that resumes above the snapshot boundary is a hole in
// acknowledged data; recovery must refuse.
func TestStoreHoleAfterSnapshotFails(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InstallSnapshot(mkSnap(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEntries(mkEntries(11, 12)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate losing the post-snapshot segment and fabricating a later
	// one: entries resume at 14 with 13 missing.
	if err := os.Remove(filepath.Join(dir, segName(11))); err != nil {
		t.Fatal(err)
	}
	w, _, err := OpenWAL(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.next = 14
	if err := w.Append([]replica.Entry{mkEntry(14)}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open err = %v, want ErrCorrupt", err)
	}
}

// After a snapshot install whose log reset survived but whose process
// died before any new appends, the WAL is empty and must resume at the
// snapshot boundary.
func TestStoreEmptyLogAfterSnapshotResumes(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.InstallSnapshot(mkSnap(30)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if len(rec.Entries) != 0 {
		t.Fatalf("recovered %d entries, want 0", len(rec.Entries))
	}
	if err := s2.AppendEntries([]replica.Entry{mkEntry(31)}); err != nil {
		t.Fatalf("append at boundary: %v", err)
	}
	if err := s2.AppendEntries([]replica.Entry{mkEntry(40)}); err == nil {
		t.Fatalf("append past boundary accepted")
	}
}

func TestStoreSaveTermMonotonic(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range []uint64{3, 1, 2} {
		if err := s.SaveTerm(term); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if m := loadMeta(dir); m.Term != 3 {
		t.Fatalf("Term = %d, want 3 (regressions must not persist)", m.Term)
	}
}

func TestStoreStatsCountTears(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEntries(mkEntries(1, 3)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Tear the last record.
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	entriesEqual(t, rec.Entries, mkEntries(1, 2))
	if rec.TornRecords != 1 {
		t.Fatalf("TornRecords = %d, want 1", rec.TornRecords)
	}
	wantTorn := uint64(recHeaderLen + entryLen - 10)
	if rec.TornBytes != wantTorn {
		t.Fatalf("TornBytes = %d, want %d", rec.TornBytes, wantTorn)
	}
	if st := s2.Stats(); st.TornRecords != 1 || st.Appends != 0 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestMetaCorruptReadsAsZero(t *testing.T) {
	dir := t.TempDir()
	if err := saveMeta(dir, Meta{Term: 9, Boots: 4}); err != nil {
		t.Fatal(err)
	}
	if m := loadMeta(dir); m.Term != 9 || m.Boots != 4 {
		t.Fatalf("round-trip: %+v", m)
	}
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, metaFile), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if m := loadMeta(dir); m != (Meta{}) {
		t.Fatalf("corrupt meta read as %+v, want zero", m)
	}
	if m := loadMeta(t.TempDir()); m != (Meta{}) {
		t.Fatalf("missing meta read as %+v, want zero", m)
	}
}

func TestCrashPointParsing(t *testing.T) {
	t.Setenv(CrashEnv, "wal-record:3:17")
	cp, err := CrashFromEnv()
	if err != nil || cp == nil || cp.AtRecord != 3 || cp.TornBytes != 17 {
		t.Fatalf("parsed %+v, %v", cp, err)
	}
	t.Setenv(CrashEnv, "wal-record:2")
	cp, err = CrashFromEnv()
	if err != nil || cp == nil || cp.AtRecord != 2 || cp.TornBytes != 7 {
		t.Fatalf("parsed %+v, %v", cp, err)
	}
	t.Setenv(CrashEnv, "snap-temp:1")
	cp, err = CrashFromEnv()
	if err != nil || cp == nil || cp.AtSnapshot != 1 {
		t.Fatalf("parsed %+v, %v", cp, err)
	}
	t.Setenv(CrashEnv, "")
	if cp, err = CrashFromEnv(); err != nil || cp != nil {
		t.Fatalf("empty env parsed as %+v, %v", cp, err)
	}
	for _, bad := range []string{"wal-record", "wal-record:0", "wal-record:x", "wal-record:1:-2", "snap-temp:1:2", "boom:1"} {
		t.Setenv(CrashEnv, bad)
		if _, err := CrashFromEnv(); err == nil {
			t.Fatalf("malformed %q accepted", bad)
		}
	}
	// A nil CrashPoint never fires.
	var nilCP *CrashPoint
	if n := nilCP.onRecord(); n != -1 {
		t.Fatalf("nil onRecord = %d", n)
	}
	if nilCP.onSnapshot() {
		t.Fatalf("nil onSnapshot fired")
	}
}
