package replog

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// CrashPoint arms deterministic self-SIGKILL points inside the storage
// layer, so the process-kill chaos harness can land a `kill -9`
// *exactly* mid-WAL-write or mid-snapshot-install instead of hoping a
// timer does. The kill is a real SIGKILL delivered to the whole
// process: no deferred cleanup runs, exactly like the failure being
// modeled.
//
// Records and snapshots are counted per process lifetime, so a
// restarted process re-arms from zero only if its environment says to.
type CrashPoint struct {
	// AtRecord, when nonzero, kills the process while appending the
	// AtRecord'th record (1-based) of this process's lifetime: the first
	// TornBytes bytes of the record are written and flushed first, so the
	// on-disk tail is genuinely torn.
	AtRecord  uint64
	TornBytes int
	// AtSnapshot, when nonzero, kills the process while persisting the
	// AtSnapshot'th snapshot (1-based): the temp file is fully written
	// but never renamed into place, the half-installed state recovery
	// must ignore.
	AtSnapshot uint64

	records   atomic.Uint64
	snapshots atomic.Uint64
}

// CrashEnv is the environment variable the chaos harness sets to arm
// crash points in a spawned member process. Format:
//
//	wal-record:<n>[:<tornBytes>]  — torn write of record n, then SIGKILL
//	snap-temp:<n>                 — snapshot n left as temp, then SIGKILL
const CrashEnv = "FFWD_CRASH_POINT"

// CrashFromEnv parses CrashEnv; nil means no crash point armed. A
// malformed value is an error so a harness typo fails loudly.
func CrashFromEnv() (*CrashPoint, error) {
	v := os.Getenv(CrashEnv)
	if v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ":")
	bad := func() (*CrashPoint, error) {
		return nil, fmt.Errorf("replog: bad %s %q (want wal-record:<n>[:<bytes>] or snap-temp:<n>)", CrashEnv, v)
	}
	if len(parts) < 2 {
		return bad()
	}
	n, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil || n == 0 {
		return bad()
	}
	switch parts[0] {
	case "wal-record":
		cp := &CrashPoint{AtRecord: n, TornBytes: 7}
		if len(parts) == 3 {
			tb, err := strconv.Atoi(parts[2])
			if err != nil || tb < 0 {
				return bad()
			}
			cp.TornBytes = tb
		} else if len(parts) > 3 {
			return bad()
		}
		return cp, nil
	case "snap-temp":
		if len(parts) != 2 {
			return bad()
		}
		return &CrashPoint{AtSnapshot: n}, nil
	}
	return bad()
}

// kill delivers SIGKILL to the current process and never returns.
func (c *CrashPoint) kill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL cannot be caught
}

// onRecord is the WAL's append fault point: it returns the number of
// record bytes to write before dying, or -1 to proceed normally.
func (c *CrashPoint) onRecord() int {
	if c == nil || c.AtRecord == 0 {
		return -1
	}
	if c.records.Add(1) != c.AtRecord {
		return -1
	}
	return c.TornBytes
}

// onSnapshot is the snapshot-save fault point: true means die after the
// temp file is written, before the rename.
func (c *CrashPoint) onSnapshot() bool {
	if c == nil || c.AtSnapshot == 0 {
		return false
	}
	return c.snapshots.Add(1) == c.AtSnapshot
}
