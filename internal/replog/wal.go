package replog

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"ffwd/internal/replica"
)

// Segment header: an 8-byte magic ("FFWDWAL1") followed by the first
// entry index the segment holds. The index also names the file
// (wal-%016x.log), but the header makes a renamed or stray file
// self-evidently wrong instead of quietly misindexed.
const (
	segHeaderLen = 16
	segMagic     = uint64(0x3157414c44574646) // "FFWDWAL1" little-endian
	segPrefix    = "wal-"
	segSuffix    = ".log"
)

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segment is one on-disk log file: entries [first, last].
type segment struct {
	first uint64
	last  uint64 // == first-1 for an empty (header-only) segment
	path  string
}

// WAL is a segmented write-ahead log of replica entries. It is not
// internally synchronized: the owning replica member already serializes
// every append, truncation, and sync (stats reads are atomic and may
// come from anywhere).
type WAL struct {
	dir  string
	opt  Options
	segs []segment // sorted by first; last element is active when f != nil
	f    *os.File  // active segment (nil until the first append needs one)
	size int64     // active segment size in bytes
	next uint64    // index the next appended entry must carry
	buf  []byte    // reusable frame scratch

	dirty bool // unsynced appends outstanding (SyncBatch bookkeeping)
	stats statCounters
	// segsN mirrors len(segs) for lock-free Stats reads.
	segsN atomic.Uint64
}

// OpenWAL opens (creating if needed) the WAL in dir and replays every
// valid record. A torn tail in the final segment is truncated away;
// corruption anywhere earlier fails with ErrCorrupt. The returned
// entries are index-contiguous; the WAL will insist the next append
// continues the sequence.
func OpenWAL(dir string, opt Options) (*WAL, []replica.Entry, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	w := &WAL{dir: dir, opt: opt}

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var firsts []uint64
	for _, de := range names {
		if first, ok := parseSegName(de.Name()); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })

	var entries []replica.Entry
	for i, first := range firsts {
		last := i == len(firsts)-1
		segEnts, err := w.openSegment(first, last)
		if err != nil {
			return nil, nil, err
		}
		if len(entries) > 0 && len(segEnts) > 0 &&
			segEnts[0].Index != entries[len(entries)-1].Index+1 {
			return nil, nil, fmt.Errorf("%w: segment %s starts at %d after %d",
				ErrCorrupt, segName(first), segEnts[0].Index, entries[len(entries)-1].Index)
		}
		entries = append(entries, segEnts...)
	}
	if n := len(entries); n > 0 {
		w.next = entries[n-1].Index + 1
	} else if n := len(w.segs); n > 0 {
		w.next = w.segs[n-1].first
	}
	return w, entries, nil
}

// openSegment validates and replays one segment, truncating a torn tail
// if the segment is the log's last. It registers the segment and, when
// last, keeps it open as the active file.
func (w *WAL) openSegment(first uint64, isLast bool) ([]replica.Entry, error) {
	path := filepath.Join(w.dir, segName(first))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	keepOpen := false
	defer func() {
		if !keepOpen {
			f.Close()
		}
	}()

	var hdr [segHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		if !isLast {
			return nil, fmt.Errorf("%w: segment %s has no header", ErrCorrupt, path)
		}
		// A header-only write torn mid-way: the segment holds nothing
		// acknowledged, so drop the file entirely.
		f.Close()
		keepOpen = true
		if err := os.Remove(path); err != nil {
			return nil, err
		}
		w.stats.tornRecords.Add(1)
		return nil, syncDir(w.dir)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != segMagic {
		return nil, fmt.Errorf("%w: segment %s has bad magic", ErrCorrupt, path)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != first {
		return nil, fmt.Errorf("%w: segment %s header says first index %d", ErrCorrupt, path, got)
	}

	if _, err := f.Seek(segHeaderLen, 0); err != nil {
		return nil, err
	}
	recs, validEnd, torn, err := scanRecords(f, segHeaderLen)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if validEnd < st.Size() {
		if !isLast {
			return nil, fmt.Errorf("%w: segment %s has %d trailing bytes", ErrCorrupt, path, st.Size()-validEnd)
		}
		if !torn {
			// scanRecords stops without the torn flag only on EOF, so a
			// shortfall here is a scanner bug, not a disk state.
			return nil, fmt.Errorf("replog: segment %s: scan stopped at %d of %d without a tear", path, validEnd, st.Size())
		}
		w.stats.tornRecords.Add(1)
		w.stats.tornBytes.Add(uint64(st.Size() - validEnd))
		if err := f.Truncate(validEnd); err != nil {
			return nil, err
		}
		if err := syncFile(f); err != nil {
			return nil, err
		}
	}

	ents := make([]replica.Entry, len(recs))
	for i, r := range recs {
		want := first + uint64(i)
		if r.entry.Index != want {
			return nil, fmt.Errorf("%w: segment %s record %d carries index %d, want %d",
				ErrCorrupt, path, i, r.entry.Index, want)
		}
		ents[i] = r.entry
	}

	last := first - 1
	if len(ents) > 0 {
		last = ents[len(ents)-1].Index
	}
	w.segs = append(w.segs, segment{first: first, last: last, path: path})
	w.segsN.Store(uint64(len(w.segs)))
	if isLast {
		if _, err := f.Seek(validEnd, 0); err != nil {
			return nil, err
		}
		w.f, w.size = f, validEnd
		keepOpen = true
	}
	return ents, nil
}

// Next returns the index the next appended entry must carry.
func (w *WAL) Next() uint64 { return w.next }

// Append durably frames ents onto the log tail. Every entry must
// continue the index sequence. Under SyncAlways the batch is fsynced
// before return; under SyncBatch the caller syncs before acknowledging.
func (w *WAL) Append(ents []replica.Entry) error {
	for _, e := range ents {
		if w.next != 0 && e.Index != w.next {
			return fmt.Errorf("replog: append index %d, want %d", e.Index, w.next)
		}
		if err := w.appendOne(e); err != nil {
			return err
		}
		w.next = e.Index + 1
	}
	if len(ents) > 0 && w.opt.Sync == SyncAlways {
		return w.sync()
	}
	return nil
}

func (w *WAL) appendOne(e replica.Entry) error {
	if w.f == nil || w.size >= w.opt.SegmentBytes {
		if err := w.rotate(e.Index); err != nil {
			return err
		}
	}
	w.buf = appendRecord(w.buf[:0], encodeEntry(nil, e))

	// The chaos harness's mid-write kill: flush a torn prefix of the
	// record, then die by SIGKILL. Recovery must truncate it away.
	if tb := w.opt.Crash.onRecord(); tb >= 0 {
		if tb > len(w.buf) {
			tb = len(w.buf)
		}
		w.f.Write(w.buf[:tb])
		w.f.Sync()
		w.opt.Crash.kill()
	}

	n, err := w.f.Write(w.buf)
	if err != nil {
		return fmt.Errorf("replog: append to %s: %w", w.f.Name(), err)
	}
	w.size += int64(n)
	w.dirty = true
	w.stats.appends.Add(1)
	w.stats.bytes.Add(uint64(n))
	w.segs[len(w.segs)-1].last = e.Index
	return nil
}

// rotate seals the active segment (if any) and starts a new one whose
// first entry will be index first.
func (w *WAL) rotate(first uint64) error {
	if w.f != nil {
		// Seal with the data on disk before the new segment exists, so a
		// crash between the two never strands synced data behind an
		// unsynced boundary.
		if err := w.sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
		w.stats.rotations.Add(1)
	}
	path := filepath.Join(w.dir, segName(first))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, segHeaderLen
	w.segs = append(w.segs, segment{first: first, last: first - 1, path: path})
	w.segsN.Store(uint64(len(w.segs)))
	return nil
}

// Sync makes outstanding appends durable (a no-op under SyncNone, or
// when nothing is dirty).
func (w *WAL) Sync() error {
	if w.opt.Sync == SyncNone || !w.dirty || w.f == nil {
		return nil
	}
	return w.sync()
}

func (w *WAL) sync() error {
	if w.f == nil {
		return nil
	}
	if err := syncFile(w.f); err != nil {
		return err
	}
	w.dirty = false
	w.stats.syncs.Add(1)
	return nil
}

// TruncateSuffix durably drops every entry with index >= i — the
// conflict-resolution path when a follower's tail disagrees with the
// leader's. Later segments are deleted whole; the segment containing i
// is cut at the record boundary.
func (w *WAL) TruncateSuffix(i uint64) error {
	if i >= w.next {
		return nil
	}
	w.stats.suffixTruncs.Add(1)
	// Close the active file: the loop below may delete or reopen it.
	if w.f != nil {
		if err := w.sync(); err != nil {
			return err
		}
		w.f.Close()
		w.f = nil
	}
	for len(w.segs) > 0 {
		s := &w.segs[len(w.segs)-1]
		if s.first >= i {
			if err := os.Remove(s.path); err != nil {
				return err
			}
			w.segs = w.segs[:len(w.segs)-1]
			w.segsN.Store(uint64(len(w.segs)))
			continue
		}
		if s.last < i {
			break
		}
		// i lands inside this segment: scan to the cut offset.
		f, err := os.OpenFile(s.path, os.O_RDWR, 0)
		if err != nil {
			return err
		}
		if _, err := f.Seek(segHeaderLen, 0); err != nil {
			f.Close()
			return err
		}
		recs, _, _, err := scanRecords(f, segHeaderLen)
		if err != nil {
			f.Close()
			return err
		}
		cut := int64(segHeaderLen)
		for _, r := range recs {
			if r.entry.Index >= i {
				cut = r.off
				break
			}
		}
		if err := f.Truncate(cut); err != nil {
			f.Close()
			return err
		}
		if err := syncFile(f); err != nil {
			f.Close()
			return err
		}
		// The cut segment becomes the active one again.
		if _, err := f.Seek(cut, 0); err != nil {
			f.Close()
			return err
		}
		w.f, w.size = f, cut
		s.last = i - 1
		break
	}
	w.next = i
	return syncDir(w.dir)
}

// Compact durably drops segments every entry of which is at or below
// index i (they are covered by a snapshot). The segment containing i+1
// survives even if it also holds older entries; recovery skips those
// against the snapshot boundary.
func (w *WAL) Compact(i uint64) error {
	removed := false
	for len(w.segs) > 0 && w.segs[0].last <= i {
		s := w.segs[0]
		if len(w.segs) == 1 {
			// The active segment: only drop it when it holds nothing at
			// all above i (fully covered), and let go of the handle.
			if w.f != nil {
				if err := w.sync(); err != nil {
					return err
				}
				w.f.Close()
				w.f = nil
			}
		}
		if err := os.Remove(s.path); err != nil {
			return err
		}
		w.segs = w.segs[1:]
		w.segsN.Store(uint64(len(w.segs)))
		removed = true
	}
	if removed {
		w.stats.compactions.Add(1)
		return syncDir(w.dir)
	}
	return nil
}

// Reset durably discards the entire log and restarts it after index
// last — the receiving side of a snapshot install.
func (w *WAL) Reset(last uint64) error {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	for _, s := range w.segs {
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	w.segs = w.segs[:0]
	w.segsN.Store(0)
	w.next = last + 1
	w.size = 0
	w.dirty = false
	return syncDir(w.dir)
}

// Close seals the log (syncing outstanding appends first).
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Stats returns a counter snapshot.
func (w *WAL) Stats() Stats {
	return Stats{
		Appends:      w.stats.appends.Load(),
		Syncs:        w.stats.syncs.Load(),
		Bytes:        w.stats.bytes.Load(),
		TornRecords:  w.stats.tornRecords.Load(),
		TornBytes:    w.stats.tornBytes.Load(),
		Segments:     w.segsN.Load(),
		Rotations:    w.stats.rotations.Load(),
		Compactions:  w.stats.compactions.Load(),
		SuffixTruncs: w.stats.suffixTruncs.Load(),
	}
}
