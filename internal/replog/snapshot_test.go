package replog

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ffwd/internal/replica"
)

func mkSnap(last uint64) *replica.Snapshot {
	return &replica.Snapshot{
		LastIndex: last,
		LastTerm:  3,
		State:     []byte{0xde, 0xad, 0xbe, 0xef, byte(last)},
		Ledger: map[uint64]replica.Applied{
			7:  {Seq: 11, Ret: 13},
			3:  {Seq: 5, Ret: 0},
			99: {Seq: 1, Ret: last},
		},
	}
}

func snapsEqual(t *testing.T, got, want *replica.Snapshot) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("nil snapshot: got=%v want=%v", got, want)
	}
	if got.LastIndex != want.LastIndex || got.LastTerm != want.LastTerm {
		t.Fatalf("boundary mismatch: got %d/%d want %d/%d",
			got.LastIndex, got.LastTerm, want.LastIndex, want.LastTerm)
	}
	if !reflect.DeepEqual(got.State, want.State) {
		t.Fatalf("state mismatch: got %x want %x", got.State, want.State)
	}
	if !reflect.DeepEqual(got.Ledger, want.Ledger) {
		t.Fatalf("ledger mismatch: got %v want %v", got.Ledger, want.Ledger)
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	s := mkSnap(42)
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	snapsEqual(t, got, s)

	// Deterministic encoding regardless of ledger map iteration order.
	a := EncodeSnapshot(s)
	for i := 0; i < 8; i++ {
		if b := EncodeSnapshot(mkSnap(42)); !reflect.DeepEqual(a, b) {
			t.Fatalf("encoding is not deterministic")
		}
	}

	// Empty state and ledger round-trip too.
	e := &replica.Snapshot{LastIndex: 1, LastTerm: 1, State: nil, Ledger: map[uint64]replica.Applied{}}
	got, err = DecodeSnapshot(EncodeSnapshot(e))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if got.LastIndex != 1 || len(got.State) != 0 || len(got.Ledger) != 0 {
		t.Fatalf("empty round-trip mangled: %+v", got)
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	base := EncodeSnapshot(mkSnap(9))
	// Every single-byte flip must be caught by the CRC.
	for i := range base {
		buf := append([]byte(nil), base...)
		buf[i] ^= 0xff
		if _, err := DecodeSnapshot(buf); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	// Every truncation must be rejected.
	for i := 0; i < len(base); i++ {
		if _, err := DecodeSnapshot(base[:i]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", i)
		}
	}
}

func TestSnapshotSaveLoadAndGC(t *testing.T) {
	dir := t.TempDir()
	for _, last := range []uint64{5, 10, 20} {
		if _, err := saveSnapshot(dir, mkSnap(last), nil); err != nil {
			t.Fatalf("save %d: %v", last, err)
		}
	}
	// GC keeps only the newest file.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snapFiles []string
	for _, de := range des {
		if _, ok := parseSnapName(de.Name()); ok {
			snapFiles = append(snapFiles, de.Name())
		}
	}
	if len(snapFiles) != 1 || snapFiles[0] != snapName(20) {
		t.Fatalf("after GC: %v, want just %s", snapFiles, snapName(20))
	}
	got, err := loadSnapshot(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	snapsEqual(t, got, mkSnap(20))
}

// A corrupt newest snapshot falls back to the previous valid one, and a
// stray temp from an interrupted install is cleaned up and ignored.
func TestSnapshotCorruptNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	old := mkSnap(10)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName(10)), EncodeSnapshot(old), 0o644); err != nil {
		t.Fatal(err)
	}
	// Newest snapshot: torn half-way (rename happened but write tore —
	// or a bit rotted). Must fall back, not fail, not delete it.
	bad := EncodeSnapshot(mkSnap(20))
	if err := os.WriteFile(filepath.Join(dir, snapName(20)), bad[:len(bad)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Stray temp from an interrupted atomic install.
	tmpName := snapName(30) + ".tmp-12345"
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := loadSnapshot(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	snapsEqual(t, got, old)
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatalf("stray temp survived load")
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(20))); err != nil {
		t.Fatalf("corrupt snapshot was deleted (evidence destroyed): %v", err)
	}
}

func TestSnapshotLoadEmptyAndMissingDir(t *testing.T) {
	got, err := loadSnapshot(filepath.Join(t.TempDir(), "nope"))
	if err != nil || got != nil {
		t.Fatalf("missing dir: got %v, %v", got, err)
	}
	got, err = loadSnapshot(t.TempDir())
	if err != nil || got != nil {
		t.Fatalf("empty dir: got %v, %v", got, err)
	}
}

func TestSnapshotNameParsing(t *testing.T) {
	for _, last := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		got, ok := parseSnapName(snapName(last))
		if !ok || got != last {
			t.Fatalf("parseSnapName(%q) = %d, %v", snapName(last), got, ok)
		}
	}
	for _, bad := range []string{"snap-.snap", "snap-xyz.snap", "wal-0000000000000001.log", "snap-01.snap"} {
		if _, ok := parseSnapName(bad); ok {
			t.Fatalf("parseSnapName(%q) accepted", bad)
		}
	}
	if !strings.HasPrefix(snapName(1), snapPrefix) {
		t.Fatalf("snapName prefix broken")
	}
}
