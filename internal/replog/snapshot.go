package replog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ffwd/internal/replica"
)

// Snapshot files: snap-%016x.snap (hex = LastIndex), written whole via
// temp+rename so installation is atomic. Layout, little-endian:
//
//	magic u64 | lastIndex u64 | lastTerm u64
//	stateLen u32 | state bytes
//	ledgerLen u32 | (clientID u64, seq u64, ret u64) * ledgerLen
//	crc u32   — CRC32-C over everything before it
const (
	snapMagic  = uint64(0x3150414e53445746) // "FWDSNAP1" little-endian
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	// maxSnapshotLen bounds a snapshot file so a corrupt header cannot
	// drive an absurd allocation at load.
	maxSnapshotLen = 1 << 30
)

func snapName(last uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, last, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// EncodeSnapshot serializes s (CRC included), the wire and disk format
// shared by replog and reptrans.
func EncodeSnapshot(s *replica.Snapshot) []byte {
	buf := make([]byte, 0, 8*3+4+len(s.State)+4+24*len(s.Ledger)+4)
	var b [8]byte
	p64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	p32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:4], v)
		buf = append(buf, b[:4]...)
	}
	p64(snapMagic)
	p64(s.LastIndex)
	p64(s.LastTerm)
	p32(uint32(len(s.State)))
	buf = append(buf, s.State...)
	p32(uint32(len(s.Ledger)))
	// Deterministic order so identical snapshots encode identically.
	ids := make([]uint64, 0, len(s.Ledger))
	for id := range s.Ledger {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := s.Ledger[id]
		p64(id)
		p64(a.Seq)
		p64(a.Ret)
	}
	p32(crc32.Checksum(buf, castagnoli))
	return buf
}

// DecodeSnapshot parses and CRC-validates an EncodeSnapshot image.
func DecodeSnapshot(buf []byte) (*replica.Snapshot, error) {
	if len(buf) < 8*3+4+4+4 {
		return nil, fmt.Errorf("replog: snapshot too short (%d bytes)", len(buf))
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("replog: snapshot CRC mismatch")
	}
	if binary.LittleEndian.Uint64(body[0:]) != snapMagic {
		return nil, fmt.Errorf("replog: snapshot bad magic")
	}
	s := &replica.Snapshot{
		LastIndex: binary.LittleEndian.Uint64(body[8:]),
		LastTerm:  binary.LittleEndian.Uint64(body[16:]),
	}
	off := 24
	stateLen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if stateLen < 0 || off+stateLen > len(body) {
		return nil, fmt.Errorf("replog: snapshot state length %d overruns", stateLen)
	}
	s.State = append([]byte(nil), body[off:off+stateLen]...)
	off += stateLen
	if off+4 > len(body) {
		return nil, fmt.Errorf("replog: snapshot ledger header missing")
	}
	n := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if n < 0 || off+24*n != len(body) {
		return nil, fmt.Errorf("replog: snapshot ledger length %d inconsistent", n)
	}
	s.Ledger = make(map[uint64]replica.Applied, n)
	for i := 0; i < n; i++ {
		id := binary.LittleEndian.Uint64(body[off:])
		s.Ledger[id] = replica.Applied{
			Seq: binary.LittleEndian.Uint64(body[off+8:]),
			Ret: binary.LittleEndian.Uint64(body[off+16:]),
		}
		off += 24
	}
	return s, nil
}

// saveSnapshot persists s into dir atomically and garbage-collects
// older snapshot files and stray temps. crash arms the chaos harness's
// mid-install kill (temp written, never renamed).
func saveSnapshot(dir string, s *replica.Snapshot, crash *CrashPoint) (int, error) {
	data := EncodeSnapshot(s)
	path := filepath.Join(dir, snapName(s.LastIndex))
	if crash.onSnapshot() {
		// Write the temp in full — the realistic worst case: everything
		// but the rename happened — then die.
		tmp, err := os.CreateTemp(dir, snapName(s.LastIndex)+".tmp-*")
		if err == nil {
			tmp.Write(data)
			tmp.Sync()
		}
		crash.kill()
	}
	if err := writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	// GC: everything but the file just written. A failure here is
	// ignorable clutter, not lost data, but we report it anyway.
	des, err := os.ReadDir(dir)
	if err != nil {
		return len(data), err
	}
	for _, de := range des {
		name := de.Name()
		if name == snapName(s.LastIndex) {
			continue
		}
		_, isSnap := parseSnapName(name)
		if isSnap || (strings.HasPrefix(name, snapPrefix) && strings.Contains(name, ".tmp-")) {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return len(data), err
			}
		}
	}
	return len(data), syncDir(dir)
}

// loadSnapshot returns the newest valid snapshot in dir (nil if none)
// and removes stray temp files from interrupted installs. Invalid
// snapshot files are skipped, not deleted: recovery should not destroy
// evidence.
func loadSnapshot(dir string) (*replica.Snapshot, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var idxs []uint64
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, snapPrefix) && strings.Contains(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if idx, ok := parseSnapName(name); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] > idxs[j] })
	for _, idx := range idxs {
		path := filepath.Join(dir, snapName(idx))
		if uint64(fileSize(path)) > maxSnapshotLen {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		s, derr := DecodeSnapshot(data)
		if derr != nil {
			continue // torn or corrupt: fall back to the previous one
		}
		return s, nil
	}
	return nil, nil
}

func fileSize(path string) int64 {
	st, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return st.Size()
}
