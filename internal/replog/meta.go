package replog

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
)

// meta.bin records the durable scalars that are not log entries: the
// highest replication term this member has accepted and how many times
// the process has booted from this directory (the boot counter salts
// client identities so a restarted leader never reissues one).
// Rewritten whole via temp+rename; a torn or missing file reads as
// zeros, which is always safe — terms only fence *stale* peers, and a
// lost term bump is re-learned from the next Hello.
const (
	metaFile  = "meta.bin"
	metaMagic = uint64(0x314154454d445746) // "FWDMETA1" little-endian
	metaLen   = 8*3 + 4
)

// Meta is the decoded meta.bin contents.
type Meta struct {
	Term  uint64
	Boots uint64
}

func encodeMeta(m Meta) []byte {
	buf := make([]byte, metaLen)
	binary.LittleEndian.PutUint64(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:], m.Term)
	binary.LittleEndian.PutUint64(buf[16:], m.Boots)
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[:24], castagnoli))
	return buf
}

// loadMeta reads dir's meta.bin; a missing, short, or corrupt file is
// the zero Meta.
func loadMeta(dir string) Meta {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil || len(data) != metaLen {
		return Meta{}
	}
	if crc32.Checksum(data[:24], castagnoli) != binary.LittleEndian.Uint32(data[24:]) {
		return Meta{}
	}
	if binary.LittleEndian.Uint64(data[0:]) != metaMagic {
		return Meta{}
	}
	return Meta{
		Term:  binary.LittleEndian.Uint64(data[8:]),
		Boots: binary.LittleEndian.Uint64(data[16:]),
	}
}

// saveMeta atomically rewrites dir's meta.bin.
func saveMeta(dir string, m Meta) error {
	return writeFileAtomic(filepath.Join(dir, metaFile), encodeMeta(m))
}
