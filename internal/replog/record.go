package replog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"ffwd/internal/replica"
)

// WAL record framing: [len u32][crc u32][payload], little-endian, where
// len is the payload length and crc is CRC32-C over the payload. An
// entry payload is the 49-byte fixed encoding below; the length prefix
// keeps the frame self-describing so future record kinds can ride the
// same scanner.
const (
	recHeaderLen = 8
	entryLen     = 49
	// maxRecordLen bounds one record so a corrupt length prefix cannot
	// drive a gigabyte allocation during recovery.
	maxRecordLen = 1 << 20
)

// EncodeEntry appends e's fixed 49-byte payload encoding to buf — the
// format shared by WAL records and reptrans append frames.
func EncodeEntry(buf []byte, e replica.Entry) []byte { return encodeEntry(buf, e) }

// DecodeEntry parses an EncodeEntry payload.
func DecodeEntry(b []byte) (replica.Entry, error) { return decodeEntry(b) }

// EntryLen is the size of one encoded entry.
const EntryLen = entryLen

// encodeEntry appends e's payload encoding to buf.
func encodeEntry(buf []byte, e replica.Entry) []byte {
	var b [entryLen]byte
	binary.LittleEndian.PutUint64(b[0:], e.Index)
	binary.LittleEndian.PutUint64(b[8:], e.Term)
	binary.LittleEndian.PutUint64(b[16:], e.ClientID)
	binary.LittleEndian.PutUint64(b[24:], e.Seq)
	b[32] = byte(e.Kind)
	binary.LittleEndian.PutUint64(b[33:], e.Key)
	binary.LittleEndian.PutUint64(b[41:], e.Val)
	return append(buf, b[:]...)
}

// decodeEntry parses an entry payload.
func decodeEntry(b []byte) (replica.Entry, error) {
	if len(b) != entryLen {
		return replica.Entry{}, fmt.Errorf("replog: entry payload is %d bytes, want %d", len(b), entryLen)
	}
	return replica.Entry{
		Index:    binary.LittleEndian.Uint64(b[0:]),
		Term:     binary.LittleEndian.Uint64(b[8:]),
		ClientID: binary.LittleEndian.Uint64(b[16:]),
		Seq:      binary.LittleEndian.Uint64(b[24:]),
		Kind:     replica.Op(b[32]),
		Key:      binary.LittleEndian.Uint64(b[33:]),
		Val:      binary.LittleEndian.Uint64(b[41:]),
	}, nil
}

// appendRecord frames payload into buf: length, CRC, payload.
func appendRecord(buf, payload []byte) []byte {
	var h [recHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:], crc32.Checksum(payload, castagnoli))
	buf = append(buf, h[:]...)
	return append(buf, payload...)
}

// scanResult reports one framed record read by scanRecords.
type scanResult struct {
	entry replica.Entry
	// off/size locate the record in the segment file, so truncation can
	// cut exactly at a record boundary.
	off  int64
	size int64
}

// scanRecords reads records from r (positioned after the segment
// header) until EOF or the first invalid record. It returns the valid
// records, the byte offset where validity ended, and whether the
// remainder was a torn tail (short/garbled trailing data) as opposed to
// a clean EOF. Any read error other than EOF is returned as err.
func scanRecords(r io.Reader, start int64) (recs []scanResult, validEnd int64, torn bool, err error) {
	off := start
	var hdr [recHeaderLen]byte
	for {
		n, rerr := io.ReadFull(r, hdr[:])
		if rerr == io.EOF {
			return recs, off, false, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			return recs, off, n > 0, nil
		}
		if rerr != nil {
			return recs, off, false, rerr
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if plen == 0 || plen > maxRecordLen {
			// A zero or absurd length is either a torn header or
			// corruption; either way validity ends here.
			return recs, off, true, nil
		}
		payload := make([]byte, plen)
		if _, rerr := io.ReadFull(r, payload); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return recs, off, true, nil
			}
			return recs, off, false, rerr
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, off, true, nil
		}
		e, derr := decodeEntry(payload)
		if derr != nil {
			return recs, off, true, nil
		}
		size := int64(recHeaderLen) + int64(plen)
		recs = append(recs, scanResult{entry: e, off: off, size: size})
		off += size
	}
}
