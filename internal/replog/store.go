package replog

import (
	"fmt"

	"ffwd/internal/replica"
)

// Store is one member's durable image: WAL + snapshots + meta in a
// single directory. It implements internal/replica's structural Storage
// interface, so a replica.Member wired to a Store replays snapshot +
// WAL suffix on restart instead of starting wiped.
//
// Like the WAL it wraps, a Store is serialized by its owning member;
// only Stats is safe to call from other goroutines.
type Store struct {
	dir  string
	opt  Options
	wal  *WAL
	meta Meta
}

// Recovered is what a directory held at open: the durable image a
// member resumes from.
type Recovered struct {
	// Snap is the newest valid snapshot, nil if none.
	Snap *replica.Snapshot
	// Entries is the contiguous WAL suffix after Snap (entries the
	// snapshot already covers are dropped during recovery).
	Entries []replica.Entry
	// Meta holds the durable term and the incremented boot counter.
	Meta Meta
	// TornRecords/TornBytes report how much unacknowledged tail the
	// open truncated away.
	TornRecords uint64
	TornBytes   uint64
}

// Open opens (creating if needed) the member directory at dir, recovers
// its durable image, and bumps the boot counter. The recovered entries
// always continue Snap contiguously; violations mean acknowledged data
// is missing and fail with ErrCorrupt rather than resuming from a hole.
func Open(dir string, opt Options) (*Store, Recovered, error) {
	opt = opt.withDefaults()
	var rec Recovered
	snap, err := loadSnapshot(dir)
	if err != nil {
		return nil, rec, err
	}
	wal, entries, err := OpenWAL(dir, opt)
	if err != nil {
		return nil, rec, err
	}
	base := uint64(0)
	if snap != nil {
		base = snap.LastIndex
	}
	// Drop entries the snapshot already covers; what remains must butt
	// up against the snapshot boundary.
	for len(entries) > 0 && entries[0].Index <= base {
		entries = entries[1:]
	}
	if len(entries) > 0 && entries[0].Index != base+1 {
		wal.Close()
		return nil, rec, fmt.Errorf("%w: WAL resumes at %d but snapshot covers through %d",
			ErrCorrupt, entries[0].Index, base)
	}
	if len(entries) == 0 && wal.next < base+1 {
		// The whole live log predates the snapshot (compaction raced the
		// crash); restart the index sequence at the boundary.
		wal.next = base + 1
	}
	meta := loadMeta(dir)
	meta.Boots++
	if err := saveMeta(dir, meta); err != nil {
		wal.Close()
		return nil, rec, err
	}
	st := wal.Stats()
	s := &Store{dir: dir, opt: opt, wal: wal, meta: meta}
	rec = Recovered{
		Snap:        snap,
		Entries:     entries,
		Meta:        meta,
		TornRecords: st.TornRecords,
		TornBytes:   st.TornBytes,
	}
	return s, rec, nil
}

// Dir returns the member directory.
func (s *Store) Dir() string { return s.dir }

// AppendEntries durably frames ents onto the log tail (fsynced now
// under SyncAlways, at the next Sync under SyncBatch).
func (s *Store) AppendEntries(ents []replica.Entry) error {
	return s.wal.Append(ents)
}

// TruncateSuffix durably drops entries with index >= i.
func (s *Store) TruncateSuffix(i uint64) error { return s.wal.TruncateSuffix(i) }

// Compact durably drops whole segments covered by index i.
func (s *Store) Compact(i uint64) error { return s.wal.Compact(i) }

// SaveSnapshot atomically persists snap and GCs older snapshots.
func (s *Store) SaveSnapshot(snap *replica.Snapshot) error {
	n, err := saveSnapshot(s.dir, snap, s.opt.Crash)
	if err != nil {
		return err
	}
	s.wal.stats.snapshots.Add(1)
	s.wal.stats.snapBytes.Store(uint64(n))
	return nil
}

// InstallSnapshot atomically persists snap and resets the log to resume
// after it — the receiving side of a snapshot transfer.
func (s *Store) InstallSnapshot(snap *replica.Snapshot) error {
	if err := s.SaveSnapshot(snap); err != nil {
		return err
	}
	return s.wal.Reset(snap.LastIndex)
}

// SaveTerm durably records the highest accepted term.
func (s *Store) SaveTerm(term uint64) error {
	if term <= s.meta.Term {
		return nil
	}
	s.meta.Term = term
	return saveMeta(s.dir, s.meta)
}

// Sync makes outstanding appends durable per the policy.
func (s *Store) Sync() error { return s.wal.Sync() }

// Close seals the store.
func (s *Store) Close() error { return s.wal.Close() }

// Stats returns a counter snapshot (safe from any goroutine).
func (s *Store) Stats() Stats {
	st := s.wal.Stats()
	st.Snapshots = s.wal.stats.snapshots.Load()
	st.SnapshotBytes = s.wal.stats.snapBytes.Load()
	return st
}
