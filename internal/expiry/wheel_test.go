package expiry

import (
	"math/rand"
	"sort"
	"testing"
)

// collect drains due nodes into a slice of keys.
type collector struct{ keys []uint64 }

func (c *collector) fire(n *Node) { c.keys = append(c.keys, n.Key) }

func TestWheelFiresAtExactTicks(t *testing.T) {
	var w Wheel
	nodes := make([]Node, 5)
	deadlines := []uint64{1, 2, 63, 64, 65}
	for i, d := range deadlines {
		nodes[i].Key = d
		w.Schedule(&nodes[i], d)
	}
	if w.Len() != 5 {
		t.Fatalf("Len = %d, want 5", w.Len())
	}
	var c collector
	for tick := uint64(1); tick <= 70; tick++ {
		before := len(c.keys)
		w.Advance(tick, 0, c.fire)
		for _, k := range c.keys[before:] {
			if k != tick {
				t.Fatalf("tick %d fired key %d", tick, k)
			}
		}
	}
	if len(c.keys) != 5 {
		t.Fatalf("fired %d, want 5 (%v)", len(c.keys), c.keys)
	}
	if w.Len() != 0 || w.Now() != 70 {
		t.Fatalf("Len=%d Now=%d after drain", w.Len(), w.Now())
	}
}

// Cascades across every level boundary: deadlines placed just before and
// just after each level's span edge must still fire exactly on time.
func TestWheelCascadeAcrossLevelBoundaries(t *testing.T) {
	spans := []uint64{1 << slotBits, 1 << (2 * slotBits), 1 << (3 * slotBits), horizon}
	for _, span := range spans {
		for _, off := range []uint64{0, 1, slotMask, span - 1, span, span + 1} {
			d := span + off
			var w Wheel
			var n Node
			n.Key = d
			w.Schedule(&n, d)
			var c collector
			// Jump to just before the deadline, then step over it.
			w.Advance(d-1, 0, c.fire)
			if len(c.keys) != 0 {
				t.Fatalf("deadline %d fired early at %d", d, w.Now())
			}
			w.Advance(d, 0, c.fire)
			if len(c.keys) != 1 || c.keys[0] != d {
				t.Fatalf("deadline %d: fired %v", d, c.keys)
			}
			if n.Deadline() != 0 {
				t.Fatalf("fired node still scheduled at %d", n.Deadline())
			}
		}
	}
}

func TestWheelOverflowBeyondHorizon(t *testing.T) {
	var w Wheel
	var far, near Node
	far.Key, near.Key = 1, 2
	w.Schedule(&far, horizon+5) // beyond the indexed horizon: overflow list
	w.Schedule(&near, 3)
	var c collector
	w.Advance(horizon, 0, c.fire) // top-level wrap drains overflow back in
	if len(c.keys) != 1 || c.keys[0] != 2 {
		t.Fatalf("pre-wrap fired %v, want [2]", c.keys)
	}
	w.Advance(horizon+5, 0, c.fire)
	if len(c.keys) != 2 || c.keys[1] != 1 {
		t.Fatalf("overflow node: fired %v", c.keys)
	}
}

func TestWheelCancel(t *testing.T) {
	var w Wheel
	var a, b Node
	a.Key, b.Key = 1, 2
	w.Schedule(&a, 10)
	w.Schedule(&b, 10)
	if !w.Cancel(&a) || w.Cancel(&a) {
		t.Fatal("Cancel not idempotent-reporting")
	}
	var c collector
	w.Advance(20, 0, c.fire)
	if len(c.keys) != 1 || c.keys[0] != 2 {
		t.Fatalf("fired %v, want [2]", c.keys)
	}
	// Reschedule moves, not duplicates.
	w.Schedule(&a, 25)
	w.Schedule(&a, 30)
	if w.Len() != 1 {
		t.Fatalf("Len = %d after reschedule, want 1", w.Len())
	}
	w.Advance(40, 0, c.fire)
	if len(c.keys) != 2 || c.keys[1] != 1 {
		t.Fatalf("rescheduled fire %v", c.keys)
	}
}

// Budgeted advances must resume exactly where they stopped: a partially
// drained tick is completed by the next call, nothing fires twice, and
// Now never moves past unfired work.
func TestWheelAdvanceBudgetResumes(t *testing.T) {
	var w Wheel
	const n = 100
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i].Key = uint64(i)
		// All on tick 100 plus a few cascading from level 1 at tick 128.
		d := uint64(100)
		if i%5 == 0 {
			d = 128
		}
		w.Schedule(&nodes[i], d)
	}
	var c collector
	calls := 0
	for w.Now() < 200 {
		w.Advance(200, 3, c.fire)
		calls++
		if calls > 1000 {
			t.Fatal("budgeted advance not terminating")
		}
	}
	if len(c.keys) != n {
		t.Fatalf("fired %d, want %d", len(c.keys), n)
	}
	seen := map[uint64]bool{}
	for _, k := range c.keys {
		if seen[k] {
			t.Fatalf("key %d fired twice", k)
		}
		seen[k] = true
	}
	if calls < n/3 {
		t.Fatalf("only %d calls for %d fires at budget 3 — budget not honored", calls, n)
	}
}

// Randomized cross-check against a sorted-slice reference: schedules,
// cancels, reschedules, and jumpy advances must fire the same sets at the
// same ticks.
func TestWheelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var w Wheel
	const nn = 400
	nodes := make([]Node, nn)
	ref := map[uint64]uint64{} // key -> deadline
	now := uint64(0)
	fired := map[uint64]uint64{} // key -> tick observed
	fire := func(n *Node) { fired[n.Key] = n.Key }
	for step := 0; step < 2000; step++ {
		switch rng.Intn(4) {
		case 0, 1: // schedule / reschedule
			i := rng.Intn(nn)
			d := now + 1 + uint64(rng.Intn(1<<uint(3+rng.Intn(18))))
			w.Schedule(&nodes[i], d)
			nodes[i].Key = uint64(i)
			ref[uint64(i)] = d
		case 2: // cancel
			i := rng.Intn(nn)
			got := w.Cancel(&nodes[i])
			_, want := ref[uint64(i)]
			if got != want {
				t.Fatalf("step %d: Cancel(%d) = %v, ref %v", step, i, got, want)
			}
			delete(ref, uint64(i))
		case 3: // advance by a possibly large jump
			jump := uint64(1 + rng.Intn(1<<uint(1+rng.Intn(16))))
			target := now + jump
			before := len(fired)
			w.Advance(target, 0, fire)
			_ = before
			// Reference: everything with deadline <= target fires.
			var due []uint64
			for k, d := range ref {
				if d <= target {
					due = append(due, k)
				}
			}
			sort.Slice(due, func(a, b int) bool { return due[a] < due[b] })
			for _, k := range due {
				if _, ok := fired[k]; !ok {
					t.Fatalf("step %d: key %d (deadline %d ≤ %d) not fired", step, k, ref[k], target)
				}
				delete(ref, k)
				delete(fired, k)
			}
			if len(fired) != 0 {
				t.Fatalf("step %d: unexpected fires %v (now=%d target=%d)", step, fired, now, target)
			}
			now = target
		}
		if w.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d ref=%d", step, w.Len(), len(ref))
		}
	}
}

// The fire callback may reschedule other nodes (the store does this for
// defensive re-arms); make sure reentrant scheduling during a drain stays
// consistent.
func TestWheelRescheduleDuringFire(t *testing.T) {
	var w Wheel
	var a, b Node
	a.Key, b.Key = 1, 2
	w.Schedule(&a, 10)
	w.Schedule(&b, 12)
	var got []uint64
	w.Advance(20, 0, func(n *Node) {
		got = append(got, n.Key)
		if n.Key == 1 {
			w.Schedule(&b, 15) // push the sibling out mid-drain
		}
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("fired %v, want [1 2]", got)
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain", w.Len())
	}
}

func TestWheelScheduleInPastClamps(t *testing.T) {
	var w Wheel
	var c collector
	w.Advance(50, 0, c.fire)
	var n Node
	n.Key = 9
	w.Schedule(&n, 7) // before Now: clamps to Now+1
	w.Advance(51, 0, c.fire)
	if len(c.keys) != 1 || c.keys[0] != 9 {
		t.Fatalf("past-deadline schedule fired %v", c.keys)
	}
}

// Schedule, Cancel and a caught-up Advance must not allocate: the wheel
// sits on the delegation server's sweep path.
func TestWheelHotPathAllocs(t *testing.T) {
	var w Wheel
	nodes := make([]Node, 64)
	fire := func(*Node) {}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := range nodes {
			w.Schedule(&nodes[i], w.Now()+uint64(i%37)+1)
		}
		w.Advance(w.Now()+40, 0, fire)
		for i := range nodes {
			w.Cancel(&nodes[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("schedule/advance/cancel allocated %.1f/run, want 0", allocs)
	}
}

func BenchmarkWheelScheduleCancel(b *testing.B) {
	var w Wheel
	var n Node
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Schedule(&n, w.Now()+uint64(i&1023)+1)
		w.Cancel(&n)
	}
}

func BenchmarkWheelAdvanceSparse(b *testing.B) {
	var w Wheel
	nodes := make([]Node, 128)
	fire := func(n *Node) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range nodes {
			w.Schedule(&nodes[j], w.Now()+uint64(j)+1)
		}
		w.Advance(w.Now()+256, 0, fire)
	}
}
