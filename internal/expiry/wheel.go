// Package expiry is the server-owned time subsystem: a hierarchical
// timer wheel for O(1) TTL scheduling with budgeted, resumable advances,
// and a scan-resistant segmented LRU for memory-pressure eviction. Both
// structures are intrusive — the owner embeds a Node in each entry — so
// scheduling, cancelling, touching and evicting allocate nothing.
//
// Neither structure synchronizes. Like every other delegated structure in
// this repo they are meant to be owned outright by one delegation server
// goroutine: expiry and eviction ride the server's exclusive cache
// residency instead of being contended client work (the paper's ownership
// argument applied to maintenance).
package expiry

import "math/bits"

const (
	slotBits    = 6
	wheelSlots  = 1 << slotBits // 64 slots per level
	slotMask    = wheelSlots - 1
	wheelLevels = 4 // 4 levels x 6 bits = a 2^24-tick indexed horizon

	// horizon is the furthest distance the wheel proper can index;
	// deadlines at or beyond now+horizon wait on the overflow list and
	// are re-placed when the top level wraps.
	horizon = uint64(1) << (slotBits * wheelLevels)

	overflowSlot = wheelLevels * wheelSlots
)

// Node is the intrusive handle an owner embeds in each of its entries.
// The wheel links it into slot lists and the SegLRU into segment lists;
// neither allocates. Key is an opaque word the owner uses to find the
// surrounding entry when the node fires or is chosen as an eviction
// victim. The zero value is unscheduled and unlisted.
type Node struct {
	Key  uint64
	Cost uint64 // bytes charged against the SegLRU's accounting

	// deadline is the scheduled expiry tick; 0 means unscheduled (tick 0
	// is never schedulable — deadlines are strictly after the wheel's
	// start tick).
	deadline uint64
	slot     int32
	seg      uint8

	next, prev   *Node // timer-wheel slot list
	lnext, lprev *Node // SegLRU segment list
}

// Deadline returns the tick the node is scheduled to fire at, 0 if
// unscheduled.
func (n *Node) Deadline() uint64 { return n.deadline }

// Wheel is a hierarchical timer wheel over an abstract tick clock. Level
// l buckets deadlines at 64^l-tick granularity; advancing the clock
// cascades maturing buckets down a level until they fire out of level 0
// at exact ticks. Schedule and Cancel are O(1); Advance is O(due work)
// with empty stretches skipped via per-level occupancy bitmasks (the same
// idiom the core uses to skip empty request slots).
type Wheel struct {
	now   uint64
	count int // scheduled nodes, overflow included

	// slots holds the per-level bucket lists (level-major), plus the
	// overflow list at the end.
	slots [wheelLevels*wheelSlots + 1]*Node
	occ   [wheelLevels]uint64 // bit s set ⇔ that level's slot s is non-empty
}

// Now returns the last fully processed tick.
func (w *Wheel) Now() uint64 { return w.now }

// Len returns the number of scheduled nodes (overflow included).
func (w *Wheel) Len() int { return w.count }

// Schedule (re)schedules n to fire at deadline. Deadlines at or before
// Now clamp to Now+1 (they fire on the next advance). O(1), allocates
// nothing.
func (w *Wheel) Schedule(n *Node, deadline uint64) {
	if n.deadline != 0 {
		w.unlink(n)
	} else {
		w.count++
	}
	if deadline <= w.now {
		deadline = w.now + 1
	}
	n.deadline = deadline
	w.link(n, w.place(deadline, w.now))
}

// Cancel unschedules n, reporting whether it was scheduled. O(1).
func (w *Wheel) Cancel(n *Node) bool {
	if n.deadline == 0 {
		return false
	}
	w.unlink(n)
	n.deadline = 0
	w.count--
	return true
}

// place picks the bucket for a deadline as seen from tick `from`: the
// lowest level whose span covers the remaining distance, indexed by the
// deadline's digits at that level's granularity.
func (w *Wheel) place(deadline, from uint64) int32 {
	delta := deadline - from
	for l := uint(0); l < wheelLevels; l++ {
		if delta < 1<<(slotBits*(l+1)) {
			return int32(l)*wheelSlots + int32((deadline>>(slotBits*l))&slotMask)
		}
	}
	return overflowSlot
}

func (w *Wheel) link(n *Node, slot int32) {
	n.slot = slot
	head := w.slots[slot]
	n.prev = nil
	n.next = head
	if head != nil {
		head.prev = n
	}
	w.slots[slot] = n
	if slot != overflowSlot {
		w.occ[slot>>slotBits] |= 1 << uint(slot&slotMask)
	}
}

func (w *Wheel) unlink(n *Node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		w.slots[n.slot] = n.next
		if n.next == nil && n.slot != overflowSlot {
			w.occ[n.slot>>slotBits] &^= 1 << uint(n.slot&slotMask)
		}
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.next, n.prev = nil, nil
}

// Advance processes every deadline due at ticks in (Now, target], calling
// fire for each due node (already unscheduled when the callback runs),
// spending at most budget units — one unit per fired node or per node
// relinked during a cascade. It returns the units spent. A return equal
// to budget means the wheel may have stopped early with Now < target;
// calling Advance again resumes exactly where it stopped (partially
// drained buckets stay consistent because Now only moves once a tick's
// cascades and fires have fully completed). budget <= 0 means unbounded.
// Overflow-list drains at the top-level wrap are atomic and may overshoot
// the budget; the overshoot is still counted in the return.
func (w *Wheel) Advance(target uint64, budget int, fire func(*Node)) int {
	units := 0
	if budget <= 0 {
		budget = int(^uint(0) >> 1)
	}
	for w.now < target {
		if w.count == 0 {
			w.now = target
			break
		}
		t := w.nextEvent()
		if t > target {
			w.now = target
			break
		}
		// Drain the overflow list when the top level wraps: every node
		// either fires, re-enters the wheel, or goes back to overflow.
		if t&(horizon-1) == 0 && w.slots[overflowSlot] != nil {
			units += w.drainOverflow(t, fire)
		}
		// Cascade maturing buckets down, highest level first. Relinks
		// are placed as seen from t, so nothing can land back in the
		// bucket being drained.
		for l := wheelLevels - 1; l >= 1; l-- {
			unit := uint64(1) << (slotBits * uint(l))
			if t&(unit-1) != 0 {
				continue
			}
			slot := int32(l)*wheelSlots + int32((t>>(slotBits*uint(l)))&slotMask)
			for w.slots[slot] != nil {
				if units >= budget {
					return units
				}
				n := w.slots[slot]
				w.unlink(n)
				if n.deadline <= t {
					n.deadline = 0
					w.count--
					fire(n)
				} else {
					w.link(n, w.place(n.deadline, t))
				}
				units++
			}
		}
		// Fire level 0: every node here matured to exactly tick t.
		slot0 := int32(t & slotMask)
		for w.slots[slot0] != nil {
			if units >= budget {
				return units
			}
			n := w.slots[slot0]
			w.unlink(n)
			n.deadline = 0
			w.count--
			fire(n)
			units++
		}
		w.now = t
	}
	return units
}

// nextEvent returns the earliest tick after now at which the wheel has
// work: a level-0 bucket to fire, a higher-level bucket to cascade, or an
// overflow drain at the top-level wrap. Empty stretches are skipped with
// the occupancy bitmasks. Returns ^uint64(0) when nothing is scheduled.
func (w *Wheel) nextEvent() uint64 {
	best := ^uint64(0)
	for l := uint(0); l < wheelLevels; l++ {
		if w.occ[l] == 0 {
			continue
		}
		// Slot s of level l is visited at ticks t ≡ 0 (mod 64^l) with
		// (t/64^l) ≡ s (mod 64). base is the first visit index after
		// now; d the circular distance to the next occupied slot.
		base := (w.now >> (slotBits * l)) + 1
		cur := base & slotMask
		var d uint64
		if hi := w.occ[l] >> cur; hi != 0 {
			d = uint64(bits.TrailingZeros64(hi))
		} else {
			lo := w.occ[l] & (1<<cur - 1)
			d = uint64(wheelSlots) - cur + uint64(bits.TrailingZeros64(lo))
		}
		if t := (base + d) << (slotBits * l); t < best {
			best = t
		}
	}
	if w.slots[overflowSlot] != nil {
		if t := ((w.now >> (slotBits * wheelLevels)) + 1) << (slotBits * wheelLevels); t < best {
			best = t
		}
	}
	return best
}

// drainOverflow detaches the whole overflow list and re-places every node
// as seen from tick t: fire if due, re-enter the wheel if within the
// horizon, back to overflow otherwise.
func (w *Wheel) drainOverflow(t uint64, fire func(*Node)) int {
	n := w.slots[overflowSlot]
	w.slots[overflowSlot] = nil
	units := 0
	for n != nil {
		next := n.next
		n.next, n.prev = nil, nil
		if n.deadline <= t {
			n.deadline = 0
			w.count--
			fire(n)
		} else {
			w.link(n, w.place(n.deadline, t))
		}
		units++
		n = next
	}
	return units
}
