package expiry

// SegLRU is a scan-resistant segmented LRU over the same intrusive Nodes
// the timer wheel uses. New entries enter a probationary segment; only an
// entry hit again is promoted to the protected segment, whose size is
// capped — promotion past the cap demotes the protected LRU entry back to
// probationary. A one-pass scan of cold keys therefore churns only the
// probationary segment and cannot flush the hot set. Victim selection is
// probationary-tail first, so eviction under memory pressure also prefers
// one-shot entries. Entry and byte accounting are tracked per segment.

// Node.seg values.
const (
	segNone = iota
	segProb
	segProt
)

// lruList is a nil-terminated doubly-linked list threaded through Node's
// lnext/lprev, head = MRU.
type lruList struct {
	head, tail *Node
	n          int
	bytes      uint64
}

func (l *lruList) pushFront(n *Node) {
	n.lprev = nil
	n.lnext = l.head
	if l.head != nil {
		l.head.lprev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
	l.n++
	l.bytes += n.Cost
}

func (l *lruList) remove(n *Node) {
	if n.lprev != nil {
		n.lprev.lnext = n.lnext
	} else {
		l.head = n.lnext
	}
	if n.lnext != nil {
		n.lnext.lprev = n.lprev
	} else {
		l.tail = n.lprev
	}
	n.lnext, n.lprev = nil, nil
	l.n--
	l.bytes -= n.Cost
}

// SegLRU's zero value is usable with an unlimited protected segment; call
// Init to cap it.
type SegLRU struct {
	prob, prot lruList
	protCap    int // max protected entries; <=0 = unlimited
}

// Init sets the protected-segment entry cap (<=0 = unlimited) on an empty
// policy.
func (s *SegLRU) Init(protCap int) { s.protCap = protCap }

// Len returns the total tracked entries.
func (s *SegLRU) Len() int { return s.prob.n + s.prot.n }

// Bytes returns the total tracked cost (sum of Node.Cost).
func (s *SegLRU) Bytes() uint64 { return s.prob.bytes + s.prot.bytes }

// ProtectedLen returns the protected segment's entry count.
func (s *SegLRU) ProtectedLen() int { return s.prot.n }

// Insert tracks a new node at the probationary MRU position.
func (s *SegLRU) Insert(n *Node) {
	n.seg = segProb
	s.prob.pushFront(n)
}

// Touch records a hit: a probationary node is promoted to the protected
// MRU (demoting the protected LRU back to probationary if the cap is
// exceeded); a protected node moves to its segment's MRU.
func (s *SegLRU) Touch(n *Node) {
	switch n.seg {
	case segProt:
		if s.prot.head == n {
			return
		}
		s.prot.remove(n)
		s.prot.pushFront(n)
	case segProb:
		s.prob.remove(n)
		n.seg = segProt
		s.prot.pushFront(n)
		for s.protCap > 0 && s.prot.n > s.protCap {
			d := s.prot.tail
			s.prot.remove(d)
			d.seg = segProb
			s.prob.pushFront(d)
		}
	}
}

// Remove untracks a node (idempotent on untracked nodes).
func (s *SegLRU) Remove(n *Node) {
	switch n.seg {
	case segProb:
		s.prob.remove(n)
	case segProt:
		s.prot.remove(n)
	default:
		return
	}
	n.seg = segNone
}

// Each calls fn for every tracked node — probationary segment first, then
// protected, each LRU→MRU — with protected reporting the segment. Feeding
// the same sequence back through Insert (+ Touch when protected) rebuilds
// an identical policy state; snapshot codecs rely on this.
func (s *SegLRU) Each(fn func(n *Node, protected bool)) {
	for n := s.prob.tail; n != nil; n = n.lprev {
		fn(n, false)
	}
	for n := s.prot.tail; n != nil; n = n.lprev {
		fn(n, true)
	}
}

// Victim returns the next node to evict under memory pressure — the
// probationary LRU entry, falling back to the protected LRU entry — or
// nil if empty. The caller removes it (typically via its own delete
// path).
func (s *SegLRU) Victim() *Node {
	if s.prob.tail != nil {
		return s.prob.tail
	}
	return s.prot.tail
}
