package expiry

import "testing"

func keysOf(l *lruList) []uint64 {
	var ks []uint64
	for n := l.head; n != nil; n = n.lnext {
		ks = append(ks, n.Key)
	}
	return ks
}

func TestSegLRUPromotionAndVictim(t *testing.T) {
	var s SegLRU
	s.Init(2)
	nodes := make([]Node, 4)
	for i := range nodes {
		nodes[i].Key = uint64(i + 1)
		nodes[i].Cost = 10
		s.Insert(&nodes[i])
	}
	if s.Len() != 4 || s.Bytes() != 40 {
		t.Fatalf("Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	// All probationary: victim = oldest insert.
	if v := s.Victim(); v.Key != 1 {
		t.Fatalf("victim = %d, want 1", v.Key)
	}
	// A hit promotes; the hot key is no longer the victim.
	s.Touch(&nodes[0])
	if s.ProtectedLen() != 1 {
		t.Fatalf("ProtectedLen = %d", s.ProtectedLen())
	}
	if v := s.Victim(); v.Key != 2 {
		t.Fatalf("victim after promote = %d, want 2", v.Key)
	}
	// Promotions past the cap demote the protected LRU back.
	s.Touch(&nodes[1])
	s.Touch(&nodes[2]) // cap 2: key 1 demoted to probationary MRU
	if s.ProtectedLen() != 2 {
		t.Fatalf("ProtectedLen = %d, want 2", s.ProtectedLen())
	}
	if nodes[0].seg != segProb {
		t.Fatal("key 1 not demoted")
	}
	// Probationary is now [1, 4] (MRU-first); victim = 4.
	if v := s.Victim(); v.Key != 4 {
		t.Fatalf("victim = %d, want 4", v.Key)
	}
	s.Remove(&nodes[3])
	s.Remove(&nodes[3]) // idempotent
	if s.Len() != 3 || s.Bytes() != 30 {
		t.Fatalf("Len=%d Bytes=%d after remove", s.Len(), s.Bytes())
	}
}

// The scan-resistance property: a long one-shot scan must not displace an
// established hot set.
func TestSegLRUScanResistance(t *testing.T) {
	var s SegLRU
	const hot = 8
	s.Init(hot)
	hotNodes := make([]Node, hot)
	for i := range hotNodes {
		hotNodes[i].Key = uint64(i)
		s.Insert(&hotNodes[i])
		s.Touch(&hotNodes[i]) // establish in protected
	}
	scan := make([]Node, 64)
	for i := range scan {
		scan[i].Key = uint64(1000 + i)
		s.Insert(&scan[i])
		// Capacity pressure: evict a victim per insert once over 2*hot.
		if s.Len() > 2*hot {
			v := s.Victim()
			if v.Key < hot {
				t.Fatalf("scan evicted hot key %d", v.Key)
			}
			s.Remove(v)
		}
	}
	for i := range hotNodes {
		if hotNodes[i].seg != segProt {
			t.Fatalf("hot key %d displaced from protected", i)
		}
	}
}

func TestSegLRUTouchOrdering(t *testing.T) {
	var s SegLRU
	s.Init(4)
	nodes := make([]Node, 3)
	for i := range nodes {
		nodes[i].Key = uint64(i + 1)
		s.Insert(&nodes[i])
		s.Touch(&nodes[i])
	}
	// Protected MRU-first should be [3, 2, 1]; touch 1 → [1, 3, 2].
	s.Touch(&nodes[0])
	got := keysOf(&s.prot)
	want := []uint64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("protected order %v, want %v", got, want)
		}
	}
	if v := s.Victim(); v.Key != 2 {
		t.Fatalf("victim = %d, want protected LRU 2", v.Key)
	}
}

func TestSegLRUAllocFree(t *testing.T) {
	var s SegLRU
	s.Init(8)
	nodes := make([]Node, 32)
	for i := range nodes {
		nodes[i].Key = uint64(i)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := range nodes {
			s.Insert(&nodes[i])
		}
		for i := range nodes {
			s.Touch(&nodes[i])
		}
		for s.Len() > 0 {
			s.Remove(s.Victim())
		}
	})
	if allocs != 0 {
		t.Fatalf("insert/touch/victim allocated %.1f/run, want 0", allocs)
	}
}
