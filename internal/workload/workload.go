// Package workload generates the benchmark drivers' inputs: key streams
// (uniform and Zipfian), operation mixes (the paper's 70/30 and 50/50
// read/update splits), and the inter-critical-section delay loops.
package workload

import (
	"math/rand"

	"ffwd/internal/spin"
)

// KeyGen produces a stream of keys in [1, Max].
type KeyGen interface {
	Next() uint64
}

// Uniform draws keys uniformly from [1, max].
type Uniform struct {
	rng *rand.Rand
	max uint64
}

// NewUniform returns a uniform generator over [1, max].
func NewUniform(seed int64, max uint64) *Uniform {
	if max < 1 {
		max = 1
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), max: max}
}

// Next returns the next key.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.max))) + 1 }

// Zipf draws keys Zipf-distributed over [1, max] — the skewed key
// popularity of cache workloads like memcached.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a Zipf generator with skew s (>1; 1.1 is mild, 1.5
// heavy) over [1, max].
func NewZipf(seed int64, s float64, max uint64) *Zipf {
	if s <= 1 {
		s = 1.0001
	}
	if max < 1 {
		max = 1
	}
	return &Zipf{z: rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, max-1)}
}

// Next returns the next key.
func (z *Zipf) Next() uint64 { return z.z.Uint64() + 1 }

// Op is a set operation kind.
type Op int

// Operation kinds for set benchmarks.
const (
	OpContains Op = iota
	OpInsert
	OpRemove
)

// Mix generates the paper's operation mixes: updateRatio of operations are
// updates, split evenly between alternating inserts and removes (the
// paper's "alternate inserting members into, and removing members from the
// list").
type Mix struct {
	rng         *rand.Rand
	updateRatio float64
	nextInsert  bool
}

// NewMix returns a mix with the given update ratio in [0,1].
func NewMix(seed int64, updateRatio float64) *Mix {
	return &Mix{rng: rand.New(rand.NewSource(seed)), updateRatio: updateRatio, nextInsert: true}
}

// Next returns the next operation kind.
func (m *Mix) Next() Op {
	if m.rng.Float64() >= m.updateRatio {
		return OpContains
	}
	m.nextInsert = !m.nextInsert
	if m.nextInsert {
		return OpRemove
	}
	return OpInsert
}

// Delay busy-waits for the paper's standard 25-PAUSE inter-critical-
// section delay.
func Delay() { spin.Delay(25) }

// DelayN busy-waits for n PAUSE iterations.
func DelayN(n int) { spin.Delay(n) }
