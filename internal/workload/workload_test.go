package workload

import (
	"math"
	"testing"
)

func TestUniformRange(t *testing.T) {
	g := NewUniform(1, 100)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k < 1 || k > 100 {
			t.Fatalf("key %d out of [1,100]", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("only %d distinct keys out of 100", len(seen))
	}
}

func TestUniformClampsMax(t *testing.T) {
	g := NewUniform(1, 0)
	for i := 0; i < 100; i++ {
		if g.Next() != 1 {
			t.Fatal("max 0 should clamp to 1")
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a, b := NewUniform(7, 1000), NewUniform(7, 1000)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipf(1, 1.3, 1000)
	counts := map[uint64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		k := g.Next()
		if k < 1 || k > 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// The most popular key must dominate a uniform share.
	if counts[1] < n/100 {
		t.Fatalf("key 1 drawn %d times; zipf skew missing", counts[1])
	}
}

func TestZipfClampsParams(t *testing.T) {
	g := NewZipf(1, 0.5, 0) // s ≤ 1 and max < 1 both clamped
	if k := g.Next(); k != 1 {
		t.Fatalf("clamped zipf returned %d", k)
	}
}

func TestMixRatio(t *testing.T) {
	m := NewMix(3, 0.30)
	var reads, inserts, removes int
	const n = 100000
	for i := 0; i < n; i++ {
		switch m.Next() {
		case OpContains:
			reads++
		case OpInsert:
			inserts++
		case OpRemove:
			removes++
		}
	}
	if frac := float64(reads) / n; math.Abs(frac-0.70) > 0.02 {
		t.Fatalf("read fraction = %.3f, want 0.70", frac)
	}
	// Inserts and removes alternate: counts within one of each other.
	if d := inserts - removes; d < -1 || d > 1 {
		t.Fatalf("inserts %d vs removes %d: must alternate", inserts, removes)
	}
}

func TestMixAllReads(t *testing.T) {
	m := NewMix(1, 0)
	for i := 0; i < 1000; i++ {
		if m.Next() != OpContains {
			t.Fatal("zero update ratio produced an update")
		}
	}
}

func TestDelayRuns(t *testing.T) {
	Delay()
	DelayN(0)
	DelayN(100)
}

func TestZipfDeterministic(t *testing.T) {
	a, b := NewZipf(9, 1.2, 1000), NewZipf(9, 1.2, 1000)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	// Per-worker seeds must produce distinct streams, or every worker
	// would hammer the same keys in lockstep.
	a, b := NewUniform(1, 1<<20), NewUniform(2, 1<<20)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds agreed on %d/1000 draws", same)
	}
}

func TestUniformFlat(t *testing.T) {
	// Shape check: across 100 keys and 100k draws, every bucket stays
	// within ±30% of the uniform expectation.
	g := NewUniform(5, 100)
	counts := make([]int, 101)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for k := 1; k <= 100; k++ {
		if c := counts[k]; c < n/100*7/10 || c > n/100*13/10 {
			t.Fatalf("key %d drawn %d times, expected ≈%d", k, c, n/100)
		}
	}
}

func TestZipfRankMonotone(t *testing.T) {
	// Shape check: aggregated rank bands must be non-increasing —
	// the head outdraws the middle, the middle outdraws the tail.
	g := NewZipf(5, 1.3, 1000)
	counts := make([]int, 1001)
	for i := 0; i < 200000; i++ {
		counts[g.Next()]++
	}
	band := func(lo, hi int) int {
		s := 0
		for k := lo; k <= hi; k++ {
			s += counts[k]
		}
		return s
	}
	head, mid, tail := band(1, 10), band(11, 100), band(101, 1000)
	if head <= mid || mid <= tail {
		t.Fatalf("rank bands not decreasing: head=%d mid=%d tail=%d", head, mid, tail)
	}
}

func TestMixDeterministic(t *testing.T) {
	a, b := NewMix(13, 0.5), NewMix(13, 0.5)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}
