package rcl

import (
	"testing"

	"ffwd/internal/obs"
)

// TestBatchedTraceLifecycle: against a batch-capable sink the RCL paths
// buffer events locally and publish them in combined ring appends; the
// snapshot must still hold one complete, ordered lifecycle per
// operation, attributable by the shared pipeline.
func TestBatchedTraceLifecycle(t *testing.T) {
	const ops = 200
	sink := obs.NewTraceSink(obs.SinkConfig{Clients: 2})
	s := NewServer(2)
	s.SetTrace(sink)
	l := s.NewLock()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c := s.MustNewClient()
	counter := uint64(0)
	for i := uint64(1); i <= ops; i++ {
		if got := c.Execute(l, func(any) uint64 { counter++; return counter }, nil); got != i {
			t.Fatalf("Execute #%d = %d", i, got)
		}
	}
	s.Stop()

	evs := sink.Snapshot()
	if sink.Drops() != 0 {
		t.Fatalf("sink dropped %d events", sink.Drops())
	}
	counts := obs.CountByKind(evs)
	for _, k := range []obs.Kind{obs.KindClientIssue, obs.KindClientWaitStart,
		obs.KindClientComplete, obs.KindExecute, obs.KindRespond} {
		if counts[k] != ops {
			t.Errorf("count[%v] = %d, want %d", k, counts[k], ops)
		}
	}
	b := obs.Attribute(evs)
	if b.Ops != ops || b.Partial != 0 {
		t.Fatalf("attributed ops = %d partial = %d, want %d and 0", b.Ops, b.Partial, ops)
	}

	// Per-seq ordering across the combined appends.
	type lifecycle struct{ issue, exec, resp, done int64 }
	byseq := make(map[uint64]*lifecycle)
	for _, ev := range evs {
		lc := byseq[ev.Arg]
		if lc == nil {
			lc = &lifecycle{}
			byseq[ev.Arg] = lc
		}
		switch ev.Kind {
		case obs.KindClientIssue:
			lc.issue = ev.TS
		case obs.KindExecute:
			lc.exec = ev.TS
		case obs.KindRespond:
			lc.resp = ev.TS
		case obs.KindClientComplete:
			lc.done = ev.TS
		}
	}
	for seq, lc := range byseq {
		if lc.exec < lc.issue || lc.resp < lc.exec {
			t.Fatalf("seq %d: lifecycle out of order issue=%d exec=%d resp=%d done=%d",
				seq, lc.issue, lc.exec, lc.resp, lc.done)
		}
	}
}

// TestBatchedTraceAllocParity: RCL's protocol allocates per operation by
// design (the request record and response cell — the pointer-chasing
// structure the paper indicts); batched tracing must not add to that.
func TestBatchedTraceAllocParity(t *testing.T) {
	measure := func(s *Server) float64 {
		l := s.NewLock()
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
		c := s.MustNewClient()
		fn := func(any) uint64 { return 1 }
		c.Execute(l, fn, nil) // warm up
		return testing.AllocsPerRun(200, func() { c.Execute(l, fn, nil) })
	}
	plain := measure(NewServer(1))
	traced := NewServer(1)
	traced.SetTrace(obs.NewTraceSink(obs.SinkConfig{Clients: 1, ClientCap: 1 << 12, ServerCap: 1 << 12}))
	if p, tr := plain, measure(traced); tr > p {
		t.Fatalf("batched tracing raised allocs per op from %.2f to %.2f", p, tr)
	}
}
