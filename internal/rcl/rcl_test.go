package rcl

import (
	"sync"
	"testing"
)

func TestExecuteRoundTrip(t *testing.T) {
	s := NewServer(4)
	l := s.NewLock()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := s.MustNewClient()
	counter := 0
	for i := 1; i <= 1000; i++ {
		got := c.Execute(l, func(any) uint64 {
			counter++
			return uint64(counter)
		}, nil)
		if got != uint64(i) {
			t.Fatalf("Execute #%d returned %d", i, got)
		}
	}
}

func TestContextPassing(t *testing.T) {
	s := NewServer(1)
	l := s.NewLock()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := s.MustNewClient()
	type ctx struct{ a, b uint64 }
	got := c.Execute(l, func(x any) uint64 {
		cc := x.(*ctx)
		return cc.a * cc.b
	}, &ctx{a: 6, b: 7})
	if got != 42 {
		t.Fatalf("Execute = %d, want 42", got)
	}
}

func TestConcurrentClients(t *testing.T) {
	const workers, iters = 8, 3000
	s := NewServer(workers)
	l := s.NewLock()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.MustNewClient()
			for i := 0; i < iters; i++ {
				c.Execute(l, func(any) uint64 { counter++; return 0 }, nil)
			}
		}()
	}
	wg.Wait()
	s.Stop()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d", counter, workers*iters)
	}
	if s.Served() != workers*iters {
		t.Fatalf("Served = %d, want %d", s.Served(), workers*iters)
	}
}

func TestDirectLockCoexistence(t *testing.T) {
	// The RCL guarantee: direct lock acquisitions on an un-ported path
	// are mutually exclusive with delegated sections.
	s := NewServer(4)
	l := s.NewLock()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	counter := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := s.MustNewClient()
		for i := 0; i < 3000; i++ {
			c.Execute(l, func(any) uint64 { counter++; return 0 }, nil)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3000; i++ {
			l.LockDirect()
			counter++
			l.UnlockDirect()
		}
	}()
	wg.Wait()
	s.Stop()
	if counter != 6000 {
		t.Fatalf("counter = %d, want 6000 (direct/delegated exclusion broken)", counter)
	}
}

func TestSlotExhaustion(t *testing.T) {
	s := NewServer(1)
	if _, err := s.NewClient(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NewClient(); err != ErrNoSlots {
		t.Fatalf("err = %v, want ErrNoSlots", err)
	}
}

func TestServerRestart(t *testing.T) {
	s := NewServer(1)
	l := s.NewLock()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	c := s.MustNewClient()
	c.Execute(l, func(any) uint64 { return 1 }, nil)
	s.Stop()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if got := c.Execute(l, func(any) uint64 { return 2 }, nil); got != 2 {
		t.Fatalf("Execute after restart = %d, want 2", got)
	}
	s.Stop()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.Start() == nil {
		t.Fatal("double Start succeeded")
	}
}

func BenchmarkRCLExecute(b *testing.B) {
	s := NewServer(64)
	l := s.NewLock()
	if err := s.Start(); err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	counter := 0
	b.RunParallel(func(pb *testing.PB) {
		c := s.MustNewClient()
		for pb.Next() {
			c.Execute(l, func(any) uint64 { counter++; return 0 }, nil)
		}
	})
}

func TestMultipleLocksOneServer(t *testing.T) {
	// RCL serves many locks from one server thread; critical sections
	// under different locks still serialize through the server, but
	// each lock's direct path stays mutually exclusive with its own
	// delegated sections only.
	s := NewServer(8)
	l1 := s.NewLock()
	l2 := s.NewLock()
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	var c1, c2 int
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.MustNewClient()
			for i := 0; i < 2000; i++ {
				c.Execute(l1, func(any) uint64 { c1++; return 0 }, nil)
				c.Execute(l2, func(any) uint64 { c2++; return 0 }, nil)
			}
		}()
	}
	wg.Wait()
	if c1 != 8000 || c2 != 8000 {
		t.Fatalf("counters = %d,%d want 8000,8000", c1, c2)
	}
}
