// Package rcl implements a Remote Core Locking-style delegation baseline
// [Lozi et al., USENIX ATC '12] — the state of the art the ffwd paper
// compares against.
//
// RCL was designed for re-engineering legacy lock-based code, and its
// protocol carries the costs the ffwd paper identifies:
//
//   - requests pass a *context* pointer: the server first reads the request
//     slot, then dereferences the context — a dependent cache miss;
//   - the server still *acquires the lock* associated with the critical
//     section before executing it, to stay correct if other code paths
//     take the same lock directly;
//   - each client has a private request/response slot (no shared response
//     lines, no batching), so every operation costs the paper's ≈3 cache
//     misses versus ffwd's ≈0.72.
//
// The implementation reproduces that structure faithfully in Go: per-client
// slots holding a pointer to a request record {lock, function, context},
// a server loop that dereferences the context and acquires the lock, and a
// per-slot response published with an atomic pointer swap.
package rcl

import (
	"errors"
	"runtime"
	"sync/atomic"

	"ffwd/internal/locks"
	"ffwd/internal/obs"
	"ffwd/internal/spin"
)

// CriticalSection is a function executed by the RCL server under the
// request's lock. The context is whatever the client packed — in re-
// engineered legacy code, the spilled local variables of the original
// critical section.
type CriticalSection func(ctx any) uint64

// request is the per-operation record the client publishes; the server
// must chase this pointer (RCL's dependent-miss structure).
type request struct {
	lock *Lock
	fn   CriticalSection
	ctx  any
	// slot and seq identify the operation for lifecycle tracing; they ride
	// in the request record because RCL's protocol has no shared-memory
	// sequence word the server could read instead.
	slot int32
	seq  uint64
}

// slot is one client's communication area.
type slot struct {
	req  atomic.Pointer[request]
	resp atomic.Pointer[response]
	_    [96]byte
}

type response struct {
	ret uint64
}

// Lock is a lock managed by an RCL server. Delegated critical sections run
// with it held, so code that still takes the lock directly (un-ported call
// sites) remains mutually excluded — RCL's compatibility guarantee.
type Lock struct {
	mu locks.TAS
}

// Server is an RCL delegation server thread.
type Server struct {
	slots    []slot
	nextSlot atomic.Int32
	running  atomic.Bool
	stopping atomic.Bool
	done     chan struct{}
	served   atomic.Uint64
	// trace receives delegation lifecycle events (see internal/obs) under
	// the same vocabulary as the ffwd core, so one analysis pipeline
	// compares both designs. nil — the default — disables tracing for one
	// branch per event site.
	trace obs.Tracer
	// traceBatch is trace's amortized fast path, detected once at
	// SetTrace: events are buffered locally and appended to the sink with
	// one cursor publication per run instead of one per event — the same
	// discipline as the ffwd core's write-combined sweep.
	traceBatch obs.BatchTracer
}

// NewServer returns a stopped RCL server with capacity for maxClients.
func NewServer(maxClients int) *Server {
	if maxClients < 1 {
		maxClients = 1
	}
	return &Server{slots: make([]slot, maxClients), done: make(chan struct{})}
}

// NewLock returns a lock managed by this server.
func (s *Server) NewLock() *Lock { return &Lock{} }

// SetTrace installs a lifecycle-event sink. Call it before Start; the
// server loop reads the field without synchronization.
func (s *Server) SetTrace(tr obs.Tracer) {
	s.trace = tr
	s.traceBatch, _ = tr.(obs.BatchTracer)
}

// ErrNoSlots is returned when every client slot is taken.
var ErrNoSlots = errors.New("rcl: all client slots in use")

// Client is one goroutine's channel to the server.
type Client struct {
	s    *Server
	slot *slot
	idx  int32
	// seq numbers this client's operations for lifecycle tracing,
	// mirroring the ffwd core's per-slot sequence word.
	seq uint64
	// evBuf holds one operation's lifecycle events for the batched trace
	// path; it lives on the (heap-allocated) Client so handing a slice of
	// it to EventBatch does not allocate per operation.
	evBuf [3]obs.Event
}

// NewClient allocates a client slot.
func (s *Server) NewClient() (*Client, error) {
	i := int(s.nextSlot.Add(1)) - 1
	if i >= len(s.slots) {
		return nil, ErrNoSlots
	}
	return &Client{s: s, slot: &s.slots[i], idx: int32(i)}, nil
}

// MustNewClient is NewClient but panics when slots are exhausted.
func (s *Server) MustNewClient() *Client {
	c, err := s.NewClient()
	if err != nil {
		panic(err)
	}
	return c
}

// Start launches the server goroutine.
func (s *Server) Start() error {
	if !s.running.CompareAndSwap(false, true) {
		return errors.New("rcl: server already running")
	}
	s.stopping.Store(false)
	s.done = make(chan struct{})
	go s.run()
	return nil
}

// Stop halts the server after a final sweep and waits for it to exit.
func (s *Server) Stop() {
	if !s.running.Load() {
		return
	}
	s.stopping.Store(true)
	<-s.done
	s.running.Store(false)
}

// Served returns the number of critical sections executed.
func (s *Server) Served() uint64 { return s.served.Load() }

func (s *Server) run() {
	defer close(s.done)
	tr := s.trace
	bt := s.traceBatch
	// evBuf collects this goroutine's execute/respond events across a
	// slot-scan pass; one EventBatch per pass (or per 16 operations)
	// replaces two ring publications per operation.
	var evBuf [32]obs.Event
	evn := 0
	for {
		stop := s.stopping.Load()
		any := false
		for i := range s.slots {
			sl := &s.slots[i]
			req := sl.req.Load()
			if req == nil {
				continue
			}
			any = true
			if bt != nil {
				if evn+2 > len(evBuf) {
					bt.EventBatch(evBuf[:evn])
					evn = 0
				}
				evBuf[evn] = obs.Event{TS: bt.Now(), Kind: obs.KindExecute, Slot: req.slot, Arg: req.seq}
				evn++
			} else if tr != nil {
				tr.Event(obs.KindExecute, req.slot, req.seq)
			}
			// RCL protocol: acquire the request's lock, execute,
			// release. The context dereference inside fn(ctx) is
			// the dependent miss.
			req.lock.mu.Lock()
			ret := req.fn(req.ctx)
			req.lock.mu.Unlock()
			sl.req.Store(nil)
			sl.resp.Store(&response{ret: ret})
			s.served.Add(1)
			if bt != nil {
				evBuf[evn] = obs.Event{TS: bt.Now(), Kind: obs.KindRespond, Slot: req.slot, Arg: req.seq}
				evn++
			} else if tr != nil {
				tr.Event(obs.KindRespond, req.slot, req.seq)
			}
		}
		if evn > 0 {
			bt.EventBatch(evBuf[:evn])
			evn = 0
		}
		if stop {
			return
		}
		if !any {
			runtime.Gosched()
		}
	}
}

// Execute delegates fn(ctx) to the server, which runs it holding l, and
// returns fn's result. It must not be called concurrently on one Client.
func (c *Client) Execute(l *Lock, fn CriticalSection, ctx any) uint64 {
	if bt := c.s.traceBatch; bt != nil {
		return c.executeBatchTraced(bt, l, fn, ctx)
	}
	tr := c.s.trace
	c.seq++
	c.slot.resp.Store(nil)
	if tr != nil {
		tr.Event(obs.KindClientIssue, c.idx, c.seq)
	}
	c.slot.req.Store(&request{lock: l, fn: fn, ctx: ctx, slot: c.idx, seq: c.seq})
	if tr != nil {
		tr.Event(obs.KindClientWaitStart, c.idx, c.seq)
	}
	var w spin.Waiter
	for {
		if r := c.slot.resp.Load(); r != nil {
			if tr != nil {
				tr.Event(obs.KindClientComplete, c.idx, c.seq)
			}
			return r.ret
		}
		w.Wait()
	}
}

// executeBatchTraced is Execute against a batch-capable sink: the
// operation's three client events land on the slot ring in one cursor
// publication at completion. The wait-start stamp shares the issue
// stamp — the gap between them is two instructions and attribution never
// reads it — so the path pays two clock reads per operation, not three.
func (c *Client) executeBatchTraced(bt obs.BatchTracer, l *Lock, fn CriticalSection, ctx any) uint64 {
	c.seq++
	c.slot.resp.Store(nil)
	ts := bt.Now()
	c.evBuf[0] = obs.Event{TS: ts, Kind: obs.KindClientIssue, Slot: c.idx, Arg: c.seq}
	c.slot.req.Store(&request{lock: l, fn: fn, ctx: ctx, slot: c.idx, seq: c.seq})
	c.evBuf[1] = obs.Event{TS: ts, Kind: obs.KindClientWaitStart, Slot: c.idx, Arg: c.seq}
	var w spin.Waiter
	for {
		if r := c.slot.resp.Load(); r != nil {
			c.evBuf[2] = obs.Event{TS: bt.Now(), Kind: obs.KindClientComplete, Slot: c.idx, Arg: c.seq}
			bt.EventBatch(c.evBuf[:])
			return r.ret
		}
		w.Wait()
	}
}

// LockDirect acquires l without delegation, as an un-ported code path
// would; mutual exclusion against delegated sections is preserved because
// the server holds l while executing them.
func (l *Lock) LockDirect() { l.mu.Lock() }

// UnlockDirect releases a LockDirect acquisition.
func (l *Lock) UnlockDirect() { l.mu.Unlock() }
