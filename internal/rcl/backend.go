package rcl

import (
	"ffwd/internal/backend"
	"ffwd/internal/ds"
)

// Backend registration: Remote Core Locking serves the whole structure
// grid by delegating each operation — lock acquisition included — to the
// RCL server. Critical sections are package-level functions and the
// operands travel in the per-goroutine handle (passed as the RCL
// context), reproducing RCL's dependent context dereference without
// allocating per operation.

func init() {
	spec := backend.SimSpec{Family: backend.SimDelegation, Method: "RCL"}
	backend.Register(backend.Backend{
		Name: "rcl",
		Pkg:  "rcl",
		Doc:  "Remote Core Locking server (context pointer chase + server-side lock)",
		Sim: map[backend.Structure]backend.SimSpec{
			backend.StructCounter: spec,
			backend.StructSet:     spec,
			backend.StructQueue:   spec,
			backend.StructStack:   spec,
			backend.StructKV:      spec,
		},
		Counter: func(cfg backend.Config) (*backend.Instance[backend.Counter], error) {
			srv, lock, err := startServer(cfg)
			if err != nil {
				return nil, err
			}
			v := new(uint64)
			return &backend.Instance[backend.Counter]{
				NewHandle: func() backend.Counter {
					return &rclCounter{c: srv.MustNewClient(), l: lock, v: v}
				},
				Close: srv.Stop,
			}, nil
		},
		Set: func(cfg backend.Config) (*backend.Instance[backend.Set], error) {
			srv, lock, err := startServer(cfg)
			if err != nil {
				return nil, err
			}
			set := ds.NewSkipList()
			return &backend.Instance[backend.Set]{
				NewHandle: func() backend.Set {
					return &rclSet{c: srv.MustNewClient(), l: lock, set: set}
				},
				Close: srv.Stop,
			}, nil
		},
		Queue: func(cfg backend.Config) (*backend.Instance[backend.Queue], error) {
			srv, lock, err := startServer(cfg)
			if err != nil {
				return nil, err
			}
			q := ds.NewQueue()
			return &backend.Instance[backend.Queue]{
				NewHandle: func() backend.Queue {
					return &rclQueue{c: srv.MustNewClient(), l: lock, q: q}
				},
				Close: srv.Stop,
			}, nil
		},
		Stack: func(cfg backend.Config) (*backend.Instance[backend.Stack], error) {
			srv, lock, err := startServer(cfg)
			if err != nil {
				return nil, err
			}
			s := ds.NewStack()
			return &backend.Instance[backend.Stack]{
				NewHandle: func() backend.Stack {
					return &rclStack{c: srv.MustNewClient(), l: lock, s: s}
				},
				Close: srv.Stop,
			}, nil
		},
		KV: func(cfg backend.Config) (*backend.Instance[backend.KV], error) {
			srv, lock, err := startServer(cfg)
			if err != nil {
				return nil, err
			}
			m := ds.NewKVMap(int(cfg.WithDefaults().KeySpace))
			return &backend.Instance[backend.KV]{
				NewHandle: func() backend.KV {
					return &rclKV{c: srv.MustNewClient(), l: lock, m: m}
				},
				Close: srv.Stop,
			}, nil
		},
	})
}

func startServer(cfg backend.Config) (*Server, *Lock, error) {
	cfg = cfg.WithDefaults()
	srv := NewServer(cfg.Goroutines)
	if cfg.Trace != nil {
		srv.SetTrace(cfg.Trace)
	}
	if err := srv.Start(); err != nil {
		return nil, nil, err
	}
	return srv, srv.NewLock(), nil
}

// emptyWord encodes "absent" in the one-word response; values are
// confined to 63 bits.
const emptyWord = ^uint64(0)

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

type rclCounter struct {
	c   *Client
	l   *Lock
	v   *uint64
	arg uint64
}

func csCounterAdd(ctx any) uint64 {
	x := ctx.(*rclCounter)
	*x.v += x.arg
	return *x.v
}

func (x *rclCounter) Add(d uint64) uint64 {
	x.arg = d
	return x.c.Execute(x.l, csCounterAdd, x)
}

type rclSet struct {
	c   *Client
	l   *Lock
	set ds.Set
	key uint64
}

func csSetContains(ctx any) uint64 { x := ctx.(*rclSet); return b2u(x.set.Contains(x.key)) }
func csSetInsert(ctx any) uint64   { x := ctx.(*rclSet); return b2u(x.set.Insert(x.key)) }
func csSetRemove(ctx any) uint64   { x := ctx.(*rclSet); return b2u(x.set.Remove(x.key)) }
func csSetLen(ctx any) uint64      { x := ctx.(*rclSet); return uint64(x.set.Len()) }

func (x *rclSet) Contains(key uint64) bool {
	x.key = key
	return x.c.Execute(x.l, csSetContains, x) == 1
}

func (x *rclSet) Insert(key uint64) bool {
	x.key = key
	return x.c.Execute(x.l, csSetInsert, x) == 1
}

func (x *rclSet) Remove(key uint64) bool {
	x.key = key
	return x.c.Execute(x.l, csSetRemove, x) == 1
}

func (x *rclSet) Len() int { return int(x.c.Execute(x.l, csSetLen, x)) }

type rclQueue struct {
	c   *Client
	l   *Lock
	q   *ds.Queue
	arg uint64
}

func csQueueEnq(ctx any) uint64 {
	x := ctx.(*rclQueue)
	x.q.Enqueue(x.arg)
	return 0
}

func csQueueDeq(ctx any) uint64 {
	x := ctx.(*rclQueue)
	v, ok := x.q.Dequeue()
	if !ok {
		return emptyWord
	}
	return v &^ (1 << 63)
}

func (x *rclQueue) Enqueue(v uint64) {
	x.arg = v
	x.c.Execute(x.l, csQueueEnq, x)
}

func (x *rclQueue) Dequeue() (uint64, bool) {
	r := x.c.Execute(x.l, csQueueDeq, x)
	if r == emptyWord {
		return 0, false
	}
	return r, true
}

type rclStack struct {
	c   *Client
	l   *Lock
	s   *ds.Stack
	arg uint64
}

func csStackPush(ctx any) uint64 {
	x := ctx.(*rclStack)
	x.s.Push(x.arg)
	return 0
}

func csStackPop(ctx any) uint64 {
	x := ctx.(*rclStack)
	v, ok := x.s.Pop()
	if !ok {
		return emptyWord
	}
	return v &^ (1 << 63)
}

func (x *rclStack) Push(v uint64) {
	x.arg = v
	x.c.Execute(x.l, csStackPush, x)
}

func (x *rclStack) Pop() (uint64, bool) {
	r := x.c.Execute(x.l, csStackPop, x)
	if r == emptyWord {
		return 0, false
	}
	return r, true
}

type rclKV struct {
	c   *Client
	l   *Lock
	m   *ds.KVMap
	key uint64
	val uint64
}

func csKVGet(ctx any) uint64 {
	x := ctx.(*rclKV)
	v, ok := x.m.Get(x.key)
	if !ok {
		return emptyWord
	}
	return v &^ (1 << 63)
}

func csKVPut(ctx any) uint64 {
	x := ctx.(*rclKV)
	x.m.Put(x.key, x.val)
	return 0
}

func csKVDel(ctx any) uint64 { x := ctx.(*rclKV); return b2u(x.m.Delete(x.key)) }

func (x *rclKV) Get(key uint64) (uint64, bool) {
	x.key = key
	r := x.c.Execute(x.l, csKVGet, x)
	if r == emptyWord {
		return 0, false
	}
	return r, true
}

func (x *rclKV) Put(key, v uint64) {
	x.key, x.val = key, v
	x.c.Execute(x.l, csKVPut, x)
}

func (x *rclKV) Delete(key uint64) bool {
	x.key = key
	return x.c.Execute(x.l, csKVDel, x) == 1
}
