// Package locks implements the mutual-exclusion baselines evaluated in the
// ffwd paper: test-and-set (TAS) and test-and-test-and-set (TTAS)
// spinlocks, the ticket lock and its hierarchical variant (HTICKET), the
// queue-based MCS and CLH locks, and a wrapper around the standard library
// mutex (the paper's MUTEX / pthreads baseline).
//
// All locks satisfy sync.Locker. The queue locks additionally expose
// explicit-node variants for callers that want to avoid the internal node
// pools. Spin loops yield to the Go scheduler after a short bound, so every
// lock is live at any GOMAXPROCS.
package locks

import (
	"fmt"
	"sync"
)

// Kind names a lock implementation, using the paper's labels.
type Kind string

// Lock kinds, named as in the paper's figures.
const (
	TASKind     Kind = "TAS"
	TTASKind    Kind = "TTAS"
	TicketKind  Kind = "TICKET"
	HTicketKind Kind = "HTICKET"
	MCSKind     Kind = "MCS"
	CLHKind     Kind = "CLH"
	MutexKind   Kind = "MUTEX"
	BackoffKind Kind = "BACKOFF"
)

// Kinds lists every lock kind, in the paper's customary order.
var Kinds = []Kind{MutexKind, TASKind, TTASKind, TicketKind, HTicketKind, MCSKind, CLHKind, BackoffKind}

// New constructs a lock of the given kind. For HTICKET, sockets is the
// number of hierarchy domains (callers that do not care may pass 1, which
// degenerates to a plain ticket lock with an extra level).
func New(kind Kind, sockets int) (sync.Locker, error) {
	switch kind {
	case TASKind:
		return new(TAS), nil
	case TTASKind:
		return new(TTAS), nil
	case TicketKind:
		return new(Ticket), nil
	case HTicketKind:
		return NewHTicket(sockets), nil
	case MCSKind:
		return new(MCS), nil
	case CLHKind:
		return NewCLH(), nil
	case MutexKind:
		return new(sync.Mutex), nil
	case BackoffKind:
		return new(Backoff), nil
	default:
		return nil, fmt.Errorf("locks: unknown kind %q", kind)
	}
}

// MustNew is New but panics on an unknown kind; convenient in benchmarks.
func MustNew(kind Kind, sockets int) sync.Locker {
	l, err := New(kind, sockets)
	if err != nil {
		panic(err)
	}
	return l
}
