package locks

import (
	"strings"
	"sync"

	"ffwd/internal/backend"
	"ffwd/internal/ds"
)

// Backend registration: each measured lock kind serves the whole
// structure grid by guarding the corresponding single-threaded structure
// from internal/ds with one global lock — the paper's coarse-locking
// baselines.

func init() {
	for _, k := range []Kind{MutexKind, TASKind, MCSKind} {
		registerLockBackend(k)
	}
}

func registerLockBackend(kind Kind) {
	name := "lock-" + strings.ToLower(string(kind))
	spec := backend.SimSpec{Family: backend.SimLock, Method: string(kind)}
	backend.Register(backend.Backend{
		Name: name,
		Pkg:  "locks",
		Doc:  "single global " + string(kind) + " lock around an unsynchronized structure",
		Sim: map[backend.Structure]backend.SimSpec{
			backend.StructCounter: spec,
			backend.StructSet:     spec,
			backend.StructQueue:   spec,
			backend.StructStack:   spec,
			backend.StructKV:      spec,
		},
		Counter: func(backend.Config) (*backend.Instance[backend.Counter], error) {
			return backend.Shared[backend.Counter](&lockedCounter{mu: MustNew(kind, 1)}), nil
		},
		Set: func(backend.Config) (*backend.Instance[backend.Set], error) {
			return backend.Shared[backend.Set](&lockedSet{mu: MustNew(kind, 1), set: ds.NewSkipList()}), nil
		},
		Queue: func(backend.Config) (*backend.Instance[backend.Queue], error) {
			return backend.Shared[backend.Queue](&lockedQueue{mu: MustNew(kind, 1), q: ds.NewQueue()}), nil
		},
		Stack: func(backend.Config) (*backend.Instance[backend.Stack], error) {
			return backend.Shared[backend.Stack](&lockedStack{mu: MustNew(kind, 1), s: ds.NewStack()}), nil
		},
		KV: func(cfg backend.Config) (*backend.Instance[backend.KV], error) {
			cfg = cfg.WithDefaults()
			return backend.Shared[backend.KV](&lockedKV{mu: MustNew(kind, 1), m: ds.NewKVMap(int(cfg.KeySpace))}), nil
		},
	})
}

type lockedCounter struct {
	mu sync.Locker
	v  uint64
}

func (c *lockedCounter) Add(d uint64) uint64 {
	c.mu.Lock()
	c.v += d
	v := c.v
	c.mu.Unlock()
	return v
}

type lockedSet struct {
	mu  sync.Locker
	set ds.Set
}

func (s *lockedSet) Contains(key uint64) bool {
	s.mu.Lock()
	ok := s.set.Contains(key)
	s.mu.Unlock()
	return ok
}

func (s *lockedSet) Insert(key uint64) bool {
	s.mu.Lock()
	ok := s.set.Insert(key)
	s.mu.Unlock()
	return ok
}

func (s *lockedSet) Remove(key uint64) bool {
	s.mu.Lock()
	ok := s.set.Remove(key)
	s.mu.Unlock()
	return ok
}

func (s *lockedSet) Len() int {
	s.mu.Lock()
	n := s.set.Len()
	s.mu.Unlock()
	return n
}

type lockedQueue struct {
	mu sync.Locker
	q  *ds.Queue
}

func (q *lockedQueue) Enqueue(v uint64) {
	q.mu.Lock()
	q.q.Enqueue(v)
	q.mu.Unlock()
}

func (q *lockedQueue) Dequeue() (uint64, bool) {
	q.mu.Lock()
	v, ok := q.q.Dequeue()
	q.mu.Unlock()
	return v, ok
}

type lockedStack struct {
	mu sync.Locker
	s  *ds.Stack
}

func (s *lockedStack) Push(v uint64) {
	s.mu.Lock()
	s.s.Push(v)
	s.mu.Unlock()
}

func (s *lockedStack) Pop() (uint64, bool) {
	s.mu.Lock()
	v, ok := s.s.Pop()
	s.mu.Unlock()
	return v, ok
}

type lockedKV struct {
	mu sync.Locker
	m  *ds.KVMap
}

func (t *lockedKV) Get(key uint64) (uint64, bool) {
	t.mu.Lock()
	v, ok := t.m.Get(key)
	t.mu.Unlock()
	return v, ok
}

func (t *lockedKV) Put(key, v uint64) {
	t.mu.Lock()
	t.m.Put(key, v)
	t.mu.Unlock()
}

func (t *lockedKV) Delete(key uint64) bool {
	t.mu.Lock()
	ok := t.m.Delete(key)
	t.mu.Unlock()
	return ok
}
