package locks

import (
	"sync"
	"testing"
)

// hammer runs workers goroutines each performing iters lock-protected
// increments of a shared counter, and checks the final count.
func hammer(t *testing.T, l sync.Locker, workers, iters int) {
	t.Helper()
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := workers * iters; counter != want {
		t.Fatalf("counter = %d, want %d (lost updates: mutual exclusion violated)", counter, want)
	}
}

func TestMutualExclusionAllKinds(t *testing.T) {
	for _, kind := range Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			l := MustNew(kind, 4)
			hammer(t, l, 8, 2000)
		})
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind("BOGUS"), 1); err == nil {
		t.Fatal("New(BOGUS) succeeded, want error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(BOGUS) did not panic")
		}
	}()
	MustNew(Kind("BOGUS"), 1)
}

func TestTASTryLock(t *testing.T) {
	var l TAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestTTASTryLock(t *testing.T) {
	var l TTAS
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
}

func TestTicketTryLock(t *testing.T) {
	var l Ticket
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestTicketFIFO(t *testing.T) {
	// With a single goroutine repeatedly locking, serving advances one
	// per acquisition.
	var l Ticket
	for i := 0; i < 10; i++ {
		l.Lock()
		l.Unlock()
	}
	if got := l.Holders(); got != 10 {
		t.Fatalf("Holders = %d, want 10", got)
	}
}

func TestMCSExplicitNodes(t *testing.T) {
	var l MCS
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var n MCSNode
			for i := 0; i < 1000; i++ {
				l.LockNode(&n)
				counter++
				l.UnlockNode(&n)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestCLHNodeRecycling(t *testing.T) {
	l := NewCLH()
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := new(CLHNode)
			for i := 0; i < 1000; i++ {
				pred := l.LockNode(n)
				counter++
				l.UnlockNode(n)
				n = pred // recycle predecessor's node
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestHTicketDomains(t *testing.T) {
	l := NewHTicket(4)
	var counter int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		domain := w % 4
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.LockDomain(domain)
				counter++
				l.UnlockDomain(domain)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000", counter)
	}
}

func TestHTicketZeroDomains(t *testing.T) {
	l := NewHTicket(0) // clamped to 1
	hammer(t, l, 4, 500)
}

func BenchmarkLocksUncontended(b *testing.B) {
	for _, kind := range Kinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			l := MustNew(kind, 1)
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

func BenchmarkLocksContended(b *testing.B) {
	for _, kind := range Kinds {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			l := MustNew(kind, 1)
			var counter int
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					counter++
					l.Unlock()
				}
			})
			_ = counter
		})
	}
}

func TestBackoffTryLock(t *testing.T) {
	var l Backoff
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}
