package locks

import (
	"sync"
	"sync/atomic"

	"ffwd/internal/spin"
)

// MCSNode is one waiter's queue entry for an MCS lock. A node may be reused
// after Unlock returns.
type MCSNode struct {
	next   atomic.Pointer[MCSNode]
	locked atomic.Uint32
	_      [40]byte
}

// MCS is the Mellor-Crummey–Scott queue lock: waiters enqueue a node with an
// atomic swap on the tail and spin on their own node's flag, so each waiter
// spins on a distinct cache line and release is a single targeted store.
type MCS struct {
	tail atomic.Pointer[MCSNode]
	// holder records the node of the current lock holder, for the
	// sync.Locker form. Only the holder writes or reads it while the
	// lock is held.
	holder atomic.Pointer[MCSNode]
	pool   sync.Pool
}

// LockNode acquires the lock enqueueing the caller-provided node.
func (l *MCS) LockNode(n *MCSNode) {
	n.next.Store(nil)
	n.locked.Store(1)
	pred := l.tail.Swap(n)
	if pred == nil {
		return
	}
	pred.next.Store(n)
	var w spin.Waiter
	for n.locked.Load() != 0 {
		w.Wait()
	}
}

// UnlockNode releases the lock acquired with n.
func (l *MCS) UnlockNode(n *MCSNode) {
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		// A successor swapped itself onto the tail but has not
		// linked into our next field yet; wait for the link.
		var w spin.Waiter
		for {
			if next = n.next.Load(); next != nil {
				break
			}
			w.Wait()
		}
	}
	next.locked.Store(0)
}

// Lock acquires the lock using a pooled node (sync.Locker form).
func (l *MCS) Lock() {
	n, _ := l.pool.Get().(*MCSNode)
	if n == nil {
		n = new(MCSNode)
	}
	l.LockNode(n)
	l.holder.Store(n)
}

// Unlock releases a Lock acquisition.
func (l *MCS) Unlock() {
	n := l.holder.Load()
	l.UnlockNode(n)
	l.pool.Put(n)
}

// CLHNode is one waiter's queue entry for a CLH lock.
type CLHNode struct {
	// succMustWait is set by the enqueuer and cleared on release; the
	// successor in the implicit queue spins on it.
	succMustWait atomic.Uint32
	_            [60]byte
}

// CLH is the Craig / Landin–Hagersten queue lock: an implicit queue where
// each waiter spins on its predecessor's node. Unlike MCS, release needs no
// successor discovery, but each acquisition consumes the predecessor's node
// (the classic node-recycling discipline).
type CLH struct {
	tail atomic.Pointer[CLHNode]
	// holder fields serve the sync.Locker form; written only by the
	// current lock holder.
	heldNode atomic.Pointer[CLHNode]
	heldPred atomic.Pointer[CLHNode]
	pool     sync.Pool
}

// NewCLH returns a CLH lock with its initial granted node.
func NewCLH() *CLH {
	l := new(CLH)
	l.tail.Store(new(CLHNode)) // succMustWait == 0: lock free
	return l
}

// LockNode acquires the lock, enqueueing n. It returns the predecessor's
// node, which the caller may reuse as the node of its next acquisition once
// UnlockNode(n) has been called.
func (l *CLH) LockNode(n *CLHNode) (pred *CLHNode) {
	n.succMustWait.Store(1)
	pred = l.tail.Swap(n)
	var w spin.Waiter
	for pred.succMustWait.Load() != 0 {
		w.Wait()
	}
	return pred
}

// UnlockNode releases the lock acquired with n.
func (l *CLH) UnlockNode(n *CLHNode) {
	n.succMustWait.Store(0)
}

// Lock acquires the lock (sync.Locker form).
func (l *CLH) Lock() {
	n, _ := l.pool.Get().(*CLHNode)
	if n == nil {
		n = new(CLHNode)
	}
	pred := l.LockNode(n)
	l.heldNode.Store(n)
	l.heldPred.Store(pred)
}

// Unlock releases a Lock acquisition. The predecessor's node is recycled
// into the pool; our own node stays live as the successor's spin target.
func (l *CLH) Unlock() {
	n := l.heldNode.Load()
	pred := l.heldPred.Load()
	l.UnlockNode(n)
	l.pool.Put(pred)
}
