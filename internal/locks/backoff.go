package locks

import (
	"sync/atomic"

	"ffwd/internal/spin"
)

// Backoff is a test-and-set spinlock with bounded exponential backoff
// [Anderson '90], the classic remedy for TAS's contention collapse: a
// failed attempt waits an exponentially growing, randomized interval
// before retrying, which spaces out the coherence traffic on the lock
// line at the cost of release-to-acquire latency.
type Backoff struct {
	state atomic.Uint32
	// seed for the per-lock xorshift jitter; contention on it is
	// harmless (stale reads just vary the jitter).
	seed atomic.Uint64
}

// Backoff bounds, in PAUSE-loop iterations.
const (
	backoffMin = 4
	backoffMax = 1024
)

// Lock acquires the lock.
func (l *Backoff) Lock() {
	limit := uint64(backoffMin)
	var w spin.Waiter
	for {
		if l.state.Load() == 0 && l.state.Swap(1) == 0 {
			return
		}
		// Randomized wait in [0, limit).
		x := l.seed.Load()*6364136223846793005 + 1442695040888963407
		l.seed.Store(x)
		spin.Delay(int(x % limit))
		w.Wait() // stay live at GOMAXPROCS=1
		if limit < backoffMax {
			limit *= 2
		}
	}
}

// TryLock attempts to acquire without waiting and reports success.
func (l *Backoff) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock.
func (l *Backoff) Unlock() { l.state.Store(0) }
