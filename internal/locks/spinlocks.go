package locks

import (
	"sync/atomic"

	"ffwd/internal/spin"
)

// TAS is a test-and-set spinlock: every acquisition attempt is an atomic
// exchange on the shared word. Cheap uncontended, collapses under
// contention because every waiter keeps writing the line.
type TAS struct {
	state atomic.Uint32
}

// Lock acquires the lock.
func (l *TAS) Lock() {
	var w spin.Waiter
	for l.state.Swap(1) != 0 {
		w.Wait()
	}
}

// TryLock attempts to acquire without waiting and reports success.
func (l *TAS) TryLock() bool { return l.state.Swap(1) == 0 }

// Unlock releases the lock.
func (l *TAS) Unlock() { l.state.Store(0) }

// TTAS is a test-and-test-and-set spinlock: waiters spin reading the word
// (keeping it shared in their cache) and only attempt the exchange when it
// reads free. Less coherence traffic while held, but still a thundering
// herd on release — the paper's characteristic congestion collapse.
type TTAS struct {
	state atomic.Uint32
}

// Lock acquires the lock.
func (l *TTAS) Lock() {
	var w spin.Waiter
	for {
		for l.state.Load() != 0 {
			w.Wait()
		}
		if l.state.Swap(1) == 0 {
			return
		}
	}
}

// TryLock attempts to acquire without waiting and reports success.
func (l *TTAS) TryLock() bool {
	return l.state.Load() == 0 && l.state.Swap(1) == 0
}

// Unlock releases the lock.
func (l *TTAS) Unlock() { l.state.Store(0) }

// Ticket is the classic fair ticket lock [Mellor-Crummey & Scott '91]:
// acquirers take the next ticket and wait until the now-serving counter
// reaches it. FIFO-fair; all waiters spin on the single now-serving word.
type Ticket struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock acquires the lock.
func (l *Ticket) Lock() {
	t := l.next.Add(1) - 1
	var w spin.Waiter
	for l.serving.Load() != t {
		w.Wait()
	}
}

// TryLock attempts to acquire without waiting and reports success.
func (l *Ticket) TryLock() bool {
	s := l.serving.Load()
	return l.next.CompareAndSwap(s, s+1)
}

// Unlock releases the lock.
func (l *Ticket) Unlock() { l.serving.Add(1) }

// Holders returns how many acquisitions have completed; used by fairness
// tests.
func (l *Ticket) Holders() uint64 { return l.serving.Load() }

// HTicket is a hierarchical (two-level) ticket lock in the spirit of the
// paper's HTICKET [Dice et al., lock cohorting]: each domain ("socket") has
// a local ticket lock, and the holder of a local lock competes for a global
// ticket lock. A domain may pass the global lock within itself up to
// maxLocalPasses times before releasing it, trading fairness for locality.
type HTicket struct {
	global  Ticket
	domains []hticketDomain
}

type hticketDomain struct {
	local Ticket
	// passes counts consecutive in-domain handoffs of the global lock.
	passes int
	// ownsGlobal records that this domain currently holds the global
	// lock (protected by the local lock).
	ownsGlobal bool
	_          [64]byte
}

// maxLocalPasses bounds in-domain handoffs before the global lock must be
// released, matching typical cohort-lock settings.
const maxLocalPasses = 64

// NewHTicket returns a hierarchical ticket lock with the given number of
// domains (sockets). domains < 1 is treated as 1.
func NewHTicket(domains int) *HTicket {
	if domains < 1 {
		domains = 1
	}
	return &HTicket{domains: make([]hticketDomain, domains)}
}

// LockDomain acquires the lock on behalf of a thread in the given domain.
func (l *HTicket) LockDomain(domain int) {
	d := &l.domains[domain%len(l.domains)]
	d.local.Lock()
	if d.ownsGlobal && d.passes < maxLocalPasses {
		// Global lock handed off within the domain.
		d.passes++
		return
	}
	l.global.Lock()
	d.ownsGlobal = true
	d.passes = 0
}

// UnlockDomain releases the lock from the given domain.
func (l *HTicket) UnlockDomain(domain int) {
	d := &l.domains[domain%len(l.domains)]
	if d.passes >= maxLocalPasses || !d.someoneWaitingLocally() {
		d.ownsGlobal = false
		d.passes = 0
		l.global.Unlock()
	}
	d.local.Unlock()
}

func (d *hticketDomain) someoneWaitingLocally() bool {
	return d.local.next.Load() > d.local.serving.Load()+1
}

// Lock acquires the lock via domain 0; it makes HTicket satisfy
// sync.Locker for callers without placement information.
func (l *HTicket) Lock() { l.LockDomain(0) }

// Unlock releases a Lock acquisition.
func (l *HTicket) Unlock() { l.UnlockDomain(0) }
