package runtimebench

import (
	"os"
	"testing"
	"time"
)

// TestRunExpirySmoke runs every scenario × mode at a tiny window and
// checks shape: one cell per combination, no errors, nonzero ops, and
// get throughput recorded for read-bearing cells.
func TestRunExpirySmoke(t *testing.T) {
	rep, err := RunExpiry(ExpiryOptions{
		Goroutines: []int{2},
		Duration:   10 * time.Millisecond,
		Capacity:   256,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * 2 // scenarios × modes, one goroutine count
	if len(rep.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), want)
	}
	seen := map[string]bool{}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s/%s: %s", c.Backend, c.Structure, c.Err)
		}
		if c.Ops == 0 || c.Mops == 0 {
			t.Fatalf("cell %s/%s measured no ops", c.Backend, c.Structure)
		}
		if c.GetOps == 0 {
			t.Fatalf("cell %s/%s measured no reads", c.Backend, c.Structure)
		}
		seen[c.Backend+"/"+c.Structure] = true
	}
	for _, sc := range []string{ScenarioExpiryStorm, ScenarioHotKeySkew, ScenarioScanHeavy} {
		for _, m := range []string{ModeWheel, ModeSweep} {
			if !seen[m+"/"+sc] {
				t.Fatalf("missing cell %s/%s", m, sc)
			}
		}
	}
}

func TestRunExpiryRejectsUnknown(t *testing.T) {
	if _, err := RunExpiry(ExpiryOptions{Scenarios: []string{"bogus"}}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := RunExpiry(ExpiryOptions{Modes: []string{"bogus"}}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestExpiryStormAB is the acceptance A/B: under an expiry storm,
// wheel-driven server expiry must sustain at least the read throughput
// of the client-driven SweepExpired baseline. Timing-sensitive, so
// gated behind FFWD_EXPIRY_AB=1 (CI runs it via `make expiry`); best of
// three trials per mode to shave scheduler noise.
func TestExpiryStormAB(t *testing.T) {
	if os.Getenv("FFWD_EXPIRY_AB") == "" {
		t.Skip("set FFWD_EXPIRY_AB=1 to run the expiry-storm A/B")
	}
	best := map[string]float64{}
	for trial := 0; trial < 3; trial++ {
		rep, err := RunExpiry(ExpiryOptions{
			Scenarios:  []string{ScenarioExpiryStorm},
			Goroutines: []int{4},
			Duration:   200 * time.Millisecond,
			Capacity:   4096,
			Seed:       int64(trial + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range rep.Cells {
			if c.Err != "" {
				t.Fatalf("cell %s: %s", c.Backend, c.Err)
			}
			if c.GetMops > best[c.Backend] {
				best[c.Backend] = c.GetMops
			}
		}
	}
	wheel, sweep := best[ModeWheel], best[ModeSweep]
	t.Logf("expiry-storm best-of-3 get throughput: wheel=%.3f Mops, sweep=%.3f Mops (%.2fx)",
		wheel, sweep, wheel/sweep)
	if wheel < sweep {
		t.Fatalf("wheel-driven expiry slower than client-driven sweep: %.3f < %.3f Mops", wheel, sweep)
	}
}
