package runtimebench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"ffwd/internal/backend"
	"ffwd/internal/obs"
	"ffwd/internal/simarch"
)

// smokeOptions keeps each cell to a few milliseconds so the full grid —
// every backend × structure × {2 goroutines} — stays fast enough for the
// race detector.
func smokeOptions() Options {
	return Options{
		Structures: backend.Structures,
		Goroutines: []int{2},
		Duration:   2 * time.Millisecond,
		Warmup:     time.Millisecond,
		KeySpace:   128,
		Seed:       42,
	}
}

// TestRunSmokeAllCells drives every registered backend through every
// structure it supports and checks each cell made progress with sane
// latency numbers.
func TestRunSmokeAllCells(t *testing.T) {
	rep, err := Run(smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Layer != "runtime" {
		t.Fatalf("Layer = %q, want runtime", rep.Layer)
	}
	cells := map[string]bool{}
	for _, c := range rep.Cells {
		name := c.Backend + "/" + c.Structure
		cells[name] = true
		if c.Err != "" {
			t.Errorf("%s: %s", name, c.Err)
			continue
		}
		if c.Ops == 0 || c.Mops <= 0 {
			t.Errorf("%s: no progress (ops=%d mops=%g)", name, c.Ops, c.Mops)
		}
		if c.P50NS <= 0 || c.P99NS < c.P50NS || float64(c.MaxNS) < c.P99NS*0.9 {
			t.Errorf("%s: implausible latencies p50=%g p99=%g max=%g",
				name, c.P50NS, c.P99NS, c.MaxNS)
		}
	}
	// Every baseline package must be represented through the registry.
	for _, want := range []string{
		"lock-mutex/counter", "lock-tas/counter", "lock-mcs/counter",
		"fc/counter", "ccsynch/counter", "dsmsynch/counter",
		"sim/counter", "lockfree/counter", "stm/counter",
		"rcu/set", "rlu/set", "rcl/counter", "ffwd/counter",
		"ffwd/set", "ffwd/queue", "ffwd/stack", "ffwd/kv",
	} {
		if !cells[want] {
			t.Errorf("missing cell %s", want)
		}
	}
}

// TestRunCorrectness cross-checks that the harness drives real
// structures: an exclusive counter sweep must count exactly the measured
// plus warmup operations — verified indirectly by a final Add(0) read
// being at least the measured op count.
func TestRunCorrectness(t *testing.T) {
	b, ok := backend.Get("ffwd")
	if !ok {
		t.Fatal("ffwd backend not registered")
	}
	inst, err := b.Counter(backend.Config{Goroutines: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	h := inst.NewHandle()
	for i := 0; i < 1000; i++ {
		h.Add(1)
	}
	if got := h.Add(0); got != 1000 {
		t.Fatalf("counter = %d, want 1000", got)
	}
}

// TestRunUnknownBackend rejects unknown names instead of skipping them.
func TestRunUnknownBackend(t *testing.T) {
	if _, err := Run(Options{Backends: []string{"nope"}}); err == nil {
		t.Fatal("want error for unknown backend")
	}
}

// TestReportFiguresAndJSON checks the bench.Figure conversion and the
// JSON emission round-trips.
func TestReportFiguresAndJSON(t *testing.T) {
	rep := Report{Layer: "runtime", Machine: "host", Cells: []Cell{
		{Backend: "ffwd", Structure: "counter", Goroutines: 4, Mops: 10},
		{Backend: "ffwd", Structure: "counter", Goroutines: 2, Mops: 5},
		{Backend: "lock-mcs", Structure: "counter", Goroutines: 2, Mops: 3},
		{Backend: "bad", Structure: "counter", Goroutines: 2, Err: "boom"},
		{Backend: "ffwd", Structure: "queue", Goroutines: 2, Mops: 7},
	}}
	figs := rep.Figures()
	if len(figs) != 2 {
		t.Fatalf("figures = %d, want 2 (counter, queue)", len(figs))
	}
	counter := figs[0]
	if counter.ID != "runtime-counter" || len(counter.Series) != 2 {
		t.Fatalf("counter figure %q has %d series, want 2 (errored cell dropped)",
			counter.ID, len(counter.Series))
	}
	// Series sorted by label, points by x.
	if counter.Series[0].Label != "ffwd" || counter.Series[1].Label != "lock-mcs" {
		t.Fatalf("series order: %q, %q", counter.Series[0].Label, counter.Series[1].Label)
	}
	pts := counter.Series[0].Points
	if len(pts) != 2 || pts[0].X != 2 || pts[1].X != 4 {
		t.Fatalf("points not sorted by goroutines: %+v", pts)
	}

	s, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal([]byte(s), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(rep.Cells) || back.Layer != "runtime" {
		t.Fatalf("JSON round-trip mismatch: %+v", back)
	}
}

// TestSimGrid runs the simulated grid over every registered backend and
// checks each simulable cell produces throughput.
func TestSimGrid(t *testing.T) {
	o := smokeOptions()
	rep, err := SimGrid(o, simarch.Machine{}, 2e4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Layer != "sim" || rep.Machine == "" {
		t.Fatalf("bad sim report header: layer=%q machine=%q", rep.Layer, rep.Machine)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("no sim cells")
	}
	seen := map[string]bool{}
	for _, c := range rep.Cells {
		name := c.Backend + "/" + c.Structure
		seen[name] = true
		if c.Err != "" {
			t.Errorf("%s: %s", name, c.Err)
			continue
		}
		if c.Mops <= 0 {
			t.Errorf("%s: Mops = %g, want > 0", name, c.Mops)
		}
	}
	for _, want := range []string{
		"ffwd/counter", "rcl/counter", "lock-mcs/counter",
		"fc/counter", "sim/counter", "stm/set", "rcu/set", "rlu/set",
		"lockfree/set", "lockfree/queue",
	} {
		if !seen[want] {
			t.Errorf("missing sim cell %s", want)
		}
	}
	// Delegation models report latency; runtime-only fields stay zero.
	for _, c := range rep.Cells {
		if c.Backend == "ffwd" && c.MeanNS <= 0 {
			t.Errorf("ffwd/%s: MeanNS = %g, want > 0 (delegation latency)", c.Structure, c.MeanNS)
		}
		if c.P50NS != 0 {
			t.Errorf("%s/%s: sim cells must not fake quantiles", c.Backend, c.Structure)
		}
	}
}

// TestRunTraceDir checks per-cell trace capture: tracing-capable backends
// (ffwd, rcl) must produce a loadable Chrome trace whose events attribute
// into complete operations; backends that ignore Config.Trace must
// produce no file.
func TestRunTraceDir(t *testing.T) {
	dir := t.TempDir()
	o := smokeOptions()
	o.Backends = []string{"ffwd", "rcl", "lock-mutex"}
	o.Structures = []backend.Structure{backend.StructCounter}
	o.TraceDir = dir
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	traced := map[string]string{}
	for _, c := range rep.Cells {
		if c.Err != "" {
			t.Errorf("%s/%s: %s", c.Backend, c.Structure, c.Err)
		}
		traced[c.Backend] = c.Trace
	}
	if traced["lock-mutex"] != "" {
		t.Errorf("lock-mutex produced a trace file: %s", traced["lock-mutex"])
	}
	for _, b := range []string{"ffwd", "rcl"} {
		path := traced[b]
		if path == "" {
			t.Errorf("%s: no trace captured", b)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			t.Errorf("%s: %v", b, err)
			continue
		}
		evs, err := obs.ReadChrome(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", b, err)
			continue
		}
		if bd := obs.Attribute(evs); bd.Ops == 0 {
			t.Errorf("%s: trace attributes zero complete operations (%d events, %d partial)",
				b, bd.Events, bd.Partial)
		}
	}
}
