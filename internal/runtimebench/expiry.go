package runtimebench

import (
	"fmt"
	"sync/atomic"
	"time"

	"ffwd/internal/apps"
	"ffwd/internal/core"
	"ffwd/internal/stats"
	"ffwd/internal/workload"
)

// Expiry scenario names. Each is a fixed operation mix against the
// delegated KV store with TTLs in play:
//
//   - expiry-storm: half the ops are short-TTL writes, half are reads,
//     over a key space that fits in the store — churn comes purely from
//     entries dying, not from eviction.
//   - hot-key-skew: zipf-distributed keys over a key space 4× the
//     store's capacity, 70/30 read/write — eviction pressure with a hot
//     set the segmented LRU should protect.
//   - scan-heavy: 90% reads sweeping sequentially through a key space 8×
//     capacity (a cache-busting scan), 10% short-TTL writes to a small
//     hot set — the scenario scan-resistant eviction exists for.
const (
	ScenarioExpiryStorm = "expiry-storm"
	ScenarioHotKeySkew  = "hot-key-skew"
	ScenarioScanHeavy   = "scan-heavy"
)

// Expiry modes: who drives reclamation.
//
//   - wheel: server-owned time — the delegation server samples a tick
//     source and drains the timer wheel in bounded slices between
//     sweeps; clients never see maintenance.
//   - sweep: client-driven expiry, the pre-wheel model — the background
//     hook is disabled and every worker periodically delegates a full
//     SweepExpired, paying the O(n) scan on the server's request path.
const (
	ModeWheel = "wheel"
	ModeSweep = "sweep"
)

// ExpiryOptions configure an expiry/eviction scenario sweep.
type ExpiryOptions struct {
	// Scenarios to run; nil means all three.
	Scenarios []string
	// Modes to run; nil means {wheel, sweep}.
	Modes []string
	// Goroutines lists worker counts; nil means {2, 4}.
	Goroutines []int
	// Duration is the per-cell measurement window (default 50ms);
	// Warmup precedes it (default Duration/5, min 1ms).
	Duration time.Duration
	Warmup   time.Duration
	// Capacity is the store's max-entries bound (default 1024).
	Capacity int
	// TTLTicks is the base TTL for scenario writes, in clock ticks of
	// 100µs (default 20 — a 2ms lifetime, several generations per
	// window).
	TTLTicks uint64
	// SweepEvery is how often (in ops per worker) sweep-mode workers
	// delegate a full SweepExpired. The default, 16, calibrates the
	// baseline to the wheel's freshness: the wheel drains at every
	// empty server sweep (sub-tick granularity), and at the closed-loop
	// rates these cells run, a worker covers one 100µs clock tick in
	// roughly 16–25 ops — sweeping less often would compare the wheel
	// against a baseline that simply lets entries go stale.
	SweepEvery int
	// Seed derives the per-worker deterministic streams.
	Seed int64
	// SampleEvery records every Nth op's latency (default 8).
	SampleEvery int
}

func (o ExpiryOptions) withDefaults() ExpiryOptions {
	if len(o.Scenarios) == 0 {
		o.Scenarios = []string{ScenarioExpiryStorm, ScenarioHotKeySkew, ScenarioScanHeavy}
	}
	if len(o.Modes) == 0 {
		o.Modes = []string{ModeWheel, ModeSweep}
	}
	if len(o.Goroutines) == 0 {
		o.Goroutines = []int{2, 4}
	}
	if o.Duration <= 0 {
		o.Duration = 50 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Duration / 5
		if o.Warmup < time.Millisecond {
			o.Warmup = time.Millisecond
		}
	}
	if o.Capacity <= 0 {
		o.Capacity = 1024
	}
	if o.TTLTicks == 0 {
		o.TTLTicks = 20
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SampleEvery < 1 {
		o.SampleEvery = 8
	}
	return o
}

// RunExpiry sweeps scenario × mode × goroutines and returns one cell
// each, in the same Report shape as the registry sweep: Backend carries
// the mode, Structure the scenario.
func RunExpiry(o ExpiryOptions) (Report, error) {
	o = o.withDefaults()
	rep := Report{Layer: "runtime", Machine: "host"}
	for _, sc := range o.Scenarios {
		switch sc {
		case ScenarioExpiryStorm, ScenarioHotKeySkew, ScenarioScanHeavy:
		default:
			return Report{}, fmt.Errorf("runtimebench: unknown expiry scenario %q", sc)
		}
		for _, mode := range o.Modes {
			if mode != ModeWheel && mode != ModeSweep {
				return Report{}, fmt.Errorf("runtimebench: unknown expiry mode %q", mode)
			}
			for _, g := range o.Goroutines {
				rep.Cells = append(rep.Cells, runExpiryCell(o, sc, mode, g))
			}
		}
	}
	return rep, nil
}

// expiryWorker carries one goroutine's deterministic scenario state.
type expiryWorker struct {
	keys    workload.KeyGen
	hot     workload.KeyGen
	mix     *workload.Mix
	scanKey uint64
	span    uint64
}

// nextOp returns (kind, key) for the scenario. Kind reuses workload.Op:
// OpContains = Get, OpInsert = SetTTL write, OpRemove = Touch.
func (w *expiryWorker) nextOp(sc string) (workload.Op, uint64) {
	op := w.mix.Next()
	switch sc {
	case ScenarioScanHeavy:
		if op == workload.OpContains {
			// Sequential cache-busting scan.
			w.scanKey++
			return op, 1 + w.scanKey%w.span
		}
		// Writes and touches stay on the hot set.
		return op, w.hot.Next()
	default:
		return op, w.keys.Next()
	}
}

func runExpiryCell(o ExpiryOptions, sc, mode string, g int) Cell {
	cell := Cell{Backend: mode, Structure: sc, Goroutines: g}

	cfg := core.Config{MaxClients: g}
	if mode == ModeSweep {
		// Disable the server's maintenance hook: reclamation happens
		// only when a client delegates SweepExpired.
		cfg.Background = func(int) int { return 0 }
	}
	d := apps.NewDelegatedKVConfig(o.Capacity, cfg)
	start := time.Now()
	tick := func() uint64 { return uint64(time.Since(start) / (100 * time.Microsecond)) }
	if mode == ModeWheel {
		d.SetTickSource(tick)
	}
	if err := d.Start(); err != nil {
		cell.Err = err.Error()
		return cell
	}
	defer d.Stop()

	keySpace := uint64(o.Capacity) / 2 // expiry-storm: fits, churn is expiry
	dist := "uniform"
	ttl := o.TTLTicks
	switch sc {
	case ScenarioHotKeySkew:
		keySpace = 4 * uint64(o.Capacity) // eviction pressure
		dist = "zipf"
		ttl = 4 * o.TTLTicks
	case ScenarioScanHeavy:
		keySpace = 8 * uint64(o.Capacity) // cache-busting scan span
	}
	updateRatio := map[string]float64{
		ScenarioExpiryStorm: 0.5,
		ScenarioHotKeySkew:  0.3,
		ScenarioScanHeavy:   0.1,
	}[sc]

	clients := make([]*apps.KVClient, g)
	workers := make([]*expiryWorker, g)
	for i := 0; i < g; i++ {
		c, err := d.NewClient()
		if err != nil {
			cell.Err = err.Error()
			return cell
		}
		clients[i] = c
		seed := o.Seed + int64(i)*7919
		var keys workload.KeyGen
		if dist == "zipf" {
			keys = workload.NewZipf(seed, 1.2, keySpace)
		} else {
			keys = workload.NewUniform(seed, keySpace)
		}
		hotSpan := uint64(o.Capacity) / 8
		if hotSpan == 0 {
			hotSpan = 1
		}
		workers[i] = &expiryWorker{
			keys: keys,
			hot:  workload.NewUniform(seed^0x9e37, hotSpan),
			mix:  workload.NewMix(seed, updateRatio),
			span: keySpace,
		}
	}

	m := measureExpiry(o, sc, mode, g, clients, workers, ttl, tick)
	cell.Ops = m.ops
	cell.GetOps = m.gets
	if m.elapsed > 0 {
		cell.Mops = float64(m.ops) / m.elapsed.Seconds() / 1e6
		cell.GetMops = float64(m.gets) / m.elapsed.Seconds() / 1e6
	}
	cell.P50NS = m.hist.Quantile(0.50)
	cell.P95NS = m.hist.Quantile(0.95)
	cell.P99NS = m.hist.Quantile(0.99)
	cell.MeanNS = m.hist.Mean()
	cell.MaxNS = float64(m.hist.Max())
	return cell
}

type expiryMetrics struct {
	ops     uint64
	gets    uint64
	elapsed time.Duration
	hist    stats.Histogram
}

// measureExpiry drives g workers through warmup and a fixed window. Get
// latencies are the sampled series — the scenario's acceptance metric is
// read throughput while reclamation happens elsewhere (wheel) or on the
// request path (sweep).
func measureExpiry(o ExpiryOptions, sc, mode string, g int,
	clients []*apps.KVClient, workers []*expiryWorker, ttl uint64, tick func() uint64) expiryMetrics {
	var phase atomic.Uint32
	ops := make([]uint64, g)
	gets := make([]uint64, g)
	hists := make([]stats.Histogram, g)
	done := make(chan struct{})
	for i := 0; i < g; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			c, w := clients[i], workers[i]
			var n, ng, sinceSweep uint64
			sampleEvery, sweepEvery := uint64(o.SampleEvery), uint64(o.SweepEvery)
			for {
				p := phase.Load()
				if p == phaseStop {
					break
				}
				op, k := w.nextOp(sc)
				sample := p == phaseMeasure && op == workload.OpContains && ng%sampleEvery == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				switch op {
				case workload.OpContains:
					c.Get(k)
				case workload.OpInsert:
					c.SetTTLNow(k, k, ttl)
				default:
					c.Touch(k, ttl)
				}
				if sample {
					hists[i].Record(uint64(time.Since(t0)))
				}
				if p == phaseMeasure {
					n++
					if op == workload.OpContains {
						ng++
					}
				}
				if mode == ModeSweep {
					if sinceSweep++; sinceSweep >= sweepEvery {
						sinceSweep = 0
						c.SweepExpired(tick())
					}
				}
			}
			ops[i], gets[i] = n, ng
		}(i)
	}

	time.Sleep(o.Warmup)
	phase.Store(phaseMeasure)
	t0 := time.Now()
	time.Sleep(o.Duration)
	phase.Store(phaseStop)
	elapsed := time.Since(t0)
	for i := 0; i < g; i++ {
		<-done
	}

	m := expiryMetrics{elapsed: elapsed}
	for i := 0; i < g; i++ {
		m.ops += ops[i]
		m.gets += gets[i]
		m.hist.Merge(&hists[i])
	}
	return m
}
