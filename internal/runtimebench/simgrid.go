package runtimebench

import (
	"fmt"
	"math"

	"ffwd/internal/backend"
	"ffwd/internal/simarch"
	"ffwd/internal/simsync"
)

// SimGrid runs the same backend × structure × goroutines sweep as Run,
// but on the simulated machine: each backend's per-structure SimSpec
// picks the simsync model (lock, delegation, combining, or structure
// simulation) and the structure picks the critical-section cost. The
// report has the same Cell shape as the runtime layer, so ffwdreport can
// overlay measured against simulated series; only the delegation models
// produce latency numbers (MeanNS), quantiles stay zero.
func SimGrid(o Options, machine simarch.Machine, durationNS float64) (Report, error) {
	o = o.withDefaults()
	if machine.Name == "" {
		machine = simarch.Broadwell
	}
	if durationNS <= 0 {
		durationNS = 1e6
	}
	backends, err := resolveBackends(o.Backends)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Layer: "sim", Machine: machine.Name}
	for _, st := range o.Structures {
		for _, b := range backends {
			spec, ok := b.Sim[st]
			if !ok || spec.Family == backend.SimNone {
				continue
			}
			for _, g := range o.Goroutines {
				rep.Cells = append(rep.Cells, simCell(o, machine, durationNS, b, st, spec, g))
			}
		}
	}
	return rep, nil
}

// simCell simulates one configuration.
func simCell(o Options, m simarch.Machine, durNS float64, b *backend.Backend,
	st backend.Structure, spec backend.SimSpec, g int) Cell {
	cell := Cell{Backend: b.Name, Structure: string(st), Goroutines: g}
	seed := uint64(o.Seed)
	var r simsync.Result
	switch spec.Family {
	case backend.SimLock:
		r = simsync.SimulateLock(simsync.LockSimConfig{
			Machine: m, Method: simsync.Method(spec.Method), Threads: g,
			DelayPauses: o.DelayPauses, CS: simCS(o, m, st, g),
			DurationNS: durNS, Seed: seed,
		})
	case backend.SimDelegation:
		r = simsync.SimulateDelegation(simsync.DelegSimConfig{
			Machine: m, Method: simsync.Method(spec.Method),
			Clients: maxInt(1, g-1), Servers: 1,
			DelayPauses: o.DelayPauses, CS: serverCS(o, m, st),
			DurationNS: durNS, Seed: seed,
		})
	case backend.SimCombining:
		r = simsync.SimulateCombining(simsync.CombSimConfig{
			Machine: m, Method: simsync.Method(spec.Method), Threads: g,
			DelayPauses: o.DelayPauses, CS: simCS(o, m, st, g),
			DurationNS: durNS, Seed: seed,
		})
	case backend.SimStructure:
		r = simsync.SimulateStructure(structConfig(o, m, durNS, seed, spec.Method, st, g))
	default:
		cell.Err = fmt.Sprintf("runtimebench: unknown sim family %q", spec.Family)
		return cell
	}
	cell.Mops = r.Mops
	cell.MeanNS = r.MeanLatencyNS
	return cell
}

// simCS is the client-context critical section per structure: the
// fetch-add increment for counters, a head/tail pointer update for
// queues and stacks, a key-space traversal for sets and KVs.
func simCS(o Options, m simarch.Machine, st backend.Structure, threads int) simsync.CS {
	switch st {
	case backend.StructCounter:
		return simsync.CS{BaseNS: 2 * m.CycleNS()}
	case backend.StructQueue, backend.StructStack:
		return simsync.CS{BaseNS: 6 * m.CycleNS(), SharedLineAccesses: 2}
	default: // set, kv
		depth := keyDepth(o.KeySpace)
		return simsync.CS{
			BaseNS: simsync.SharedTraverseNS(m, depth, int(o.KeySpace), threads),
		}
	}
}

// serverCS is the same section costed in a delegation server's cache-
// resident context.
func serverCS(o Options, m simarch.Machine, st backend.Structure) simsync.CS {
	switch st {
	case backend.StructCounter:
		return simsync.CS{BaseNS: 2 * m.CycleNS()}
	case backend.StructQueue, backend.StructStack:
		return simsync.CS{BaseNS: 6 * m.CycleNS()}
	default:
		depth := keyDepth(o.KeySpace)
		return simsync.CS{
			BaseNS: simsync.ServerTraverseNS(m, depth, int(o.KeySpace)) + 8*m.CycleNS(),
		}
	}
}

// keyDepth is the expected search depth over a KeySpace-sized ordered
// structure (≈1.39·log2 n, as in the tree figures).
func keyDepth(keySpace uint64) int {
	d := simsync.Log2(int(keySpace) + 1)
	return d + d/2
}

// structConfig builds the structure-simulation parameters per method,
// mirroring the tree-figure models: RCU serializes updates behind the
// writer mutex plus a grace period, RLU syncs per writer domain, STM
// pays instrumentation and aborts on conflict, LF retries a cheap CAS.
func structConfig(o Options, m simarch.Machine, durNS float64, seed uint64,
	method string, st backend.Structure, g int) simsync.StructSimConfig {
	depth := keyDepth(o.KeySpace)
	lines := int(o.KeySpace)
	traverse := simsync.SharedTraverseNS(m, depth, lines, g)
	update := o.UpdateRatio
	if st == backend.StructCounter {
		// Counter cells (STM's TVar counter): no traversal, all update.
		traverse = 2 * m.CycleNS()
		update = 1.0
	}
	cfg := simsync.StructSimConfig{
		Machine: m, Method: simsync.Method(method), Threads: g,
		UpdateRatio: update, ReadNS: traverse,
		DelayPauses: o.DelayPauses, DurationNS: durNS, Seed: seed,
	}
	switch method {
	case "RCU":
		cfg.SerialNS = traverse + 600
		cfg.SerialDomains = 1
	case "RLU":
		cfg.SerialNS = traverse + 200 + 6*float64(g)
		cfg.SerialDomains = 4
	case "STM":
		conflictScale := 8.0 / math.Max(float64(o.KeySpace), 16)
		cfg.ReadNS = traverse * 2.2
		cfg.UpdateNS = traverse * 2.2
		cfg.SerialNS = 150
		cfg.SerialDomains = 1
		cfg.AbortProb = func(inflight int) float64 {
			return math.Min(0.85, conflictScale*float64(inflight))
		}
		cfg.ReadAbortProb = func(inflight int) float64 {
			return math.Min(0.5, 0.4*conflictScale*float64(inflight))
		}
	default: // "LF" and other fine-grained lock-free structures
		cfg.UpdateNS = traverse
		cfg.ReadNS = traverse
		cfg.SerialNS = 0.5 * m.LocalLLCNS // the CAS
		cfg.SerialDomains = 64            // per-node: waiting is rare
		cfg.AbortProb = func(inflight int) float64 {
			return math.Min(0.5, 0.05*float64(inflight))
		}
	}
	return cfg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
