// Package runtimebench is the runtime measurement layer: it sweeps the
// backend registry's cross-product — synchronization scheme × shared
// structure × workload — on the real machine, where internal/bench runs
// the same grid on the simulated machines. Every cell is a fixed-duration
// closed loop: Goroutines workers drive one structure instance through
// per-goroutine handles, with keys and operation mixes from
// internal/workload and per-operation latencies sampled into
// internal/stats log-bucket histograms.
//
// Results carry both throughput (Mops) and latency quantiles
// (p50/p95/p99), and convert to the same bench.Figure shape the simulator
// produces, so cmd/ffwdbench and cmd/ffwdreport can render — and overlay
// — measured and simulated series with one code path.
package runtimebench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ffwd/internal/backend"
	_ "ffwd/internal/backend/all" // link every backend into the registry
	"ffwd/internal/bench"
	"ffwd/internal/obs"
	"ffwd/internal/stats"
	"ffwd/internal/workload"
)

// Options configure a sweep.
type Options struct {
	// Backends restricts the sweep to the named backends; nil means
	// every registered backend.
	Backends []string
	// Structures restricts the sweep; nil means counter, set, queue
	// (the CLI's acceptance trio). Use backend.Structures for all.
	Structures []backend.Structure
	// Goroutines lists the worker counts to sweep; nil means {1, 2, 4}.
	Goroutines []int
	// Duration is the per-cell measurement window (default 50ms).
	Duration time.Duration
	// Warmup precedes each measurement window (default Duration/5,
	// minimum 1ms).
	Warmup time.Duration
	// KeySpace is the key range [1, KeySpace] (default 1024); sets and
	// KVs are prefilled to half occupancy.
	KeySpace uint64
	// UpdateRatio is the update fraction for set/KV workloads in [0,1]
	// (default 0.3 — the paper's 70/30 mix).
	UpdateRatio float64
	// Dist selects the key distribution: "uniform" (default) or
	// "zipf".
	Dist string
	// ZipfSkew is the Zipf s parameter when Dist is "zipf" (default
	// 1.2).
	ZipfSkew float64
	// DelayPauses inserts the paper's inter-operation PAUSE delay
	// (default 0: closed loop at full speed).
	DelayPauses int
	// Seed derives every worker's deterministic key/mix streams.
	Seed int64
	// SampleEvery records the latency of every Nth operation per
	// worker (default 8) to bound timing overhead.
	SampleEvery int
	// Shards is the parallelism hint forwarded to sharded backends.
	Shards int
	// TraceDir, when non-empty, attaches a lifecycle-event sink
	// (internal/obs) to every cell of a tracing-capable backend and
	// writes each capture as Chrome trace JSON under the directory,
	// one file per cell: trace-<backend>-<structure>-<goroutines>.json.
	// Backends that ignore Config.Trace produce no file.
	TraceDir string
}

func (o Options) withDefaults() Options {
	if len(o.Structures) == 0 {
		o.Structures = []backend.Structure{backend.StructCounter, backend.StructSet, backend.StructQueue}
	}
	if len(o.Goroutines) == 0 {
		o.Goroutines = []int{1, 2, 4}
	}
	if o.Duration <= 0 {
		o.Duration = 50 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = o.Duration / 5
		if o.Warmup < time.Millisecond {
			o.Warmup = time.Millisecond
		}
	}
	if o.KeySpace == 0 {
		o.KeySpace = 1024
	}
	if o.UpdateRatio == 0 {
		o.UpdateRatio = 0.3
	}
	if o.Dist == "" {
		o.Dist = "uniform"
	}
	if o.ZipfSkew == 0 {
		o.ZipfSkew = 1.2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SampleEvery < 1 {
		o.SampleEvery = 8
	}
	return o
}

// Cell is one measured (backend, structure, goroutines) configuration.
type Cell struct {
	Backend    string `json:"backend"`
	Structure  string `json:"structure"`
	Goroutines int    `json:"goroutines"`
	// Ops is the operation count inside the measurement window.
	Ops uint64 `json:"ops"`
	// Mops is throughput in million operations per second.
	Mops float64 `json:"mops"`
	// GetOps/GetMops isolate read throughput for the expiry/eviction
	// scenarios (RunExpiry), where the acceptance metric is reads
	// sustained while reclamation happens; zero for registry cells.
	GetOps  uint64  `json:"get_ops,omitempty"`
	GetMops float64 `json:"get_mops,omitempty"`
	// Latency quantiles and moments, in nanoseconds, from sampled
	// per-operation timings.
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
	MeanNS float64 `json:"mean_ns"`
	MaxNS  float64 `json:"max_ns"`
	// Err marks a cell whose construction failed; its numbers are
	// zero.
	Err string `json:"err,omitempty"`
	// Trace is the path of the cell's captured lifecycle trace, when
	// Options.TraceDir was set and the backend supports tracing.
	Trace string `json:"trace,omitempty"`
}

// Report is the outcome of one sweep.
type Report struct {
	// Layer is "runtime" for measured cells, "sim" for simulated ones.
	Layer string `json:"layer"`
	// Machine names the simulated machine for sim reports; for runtime
	// reports it is "host".
	Machine string `json:"machine"`
	Cells   []Cell `json:"cells"`
}

// Run executes the sweep and returns one cell per backend × supported
// structure × goroutine count. Unknown backend names are an error;
// unsupported (backend, structure) pairs are skipped silently — that is
// the registry's Supports contract, not a failure.
func Run(o Options) (Report, error) {
	o = o.withDefaults()
	backends, err := resolveBackends(o.Backends)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Layer: "runtime", Machine: "host"}
	for _, st := range o.Structures {
		for _, b := range backends {
			if !b.Supports(st) {
				continue
			}
			for _, g := range o.Goroutines {
				rep.Cells = append(rep.Cells, runCell(o, b, st, g))
			}
		}
	}
	return rep, nil
}

func resolveBackends(names []string) ([]*backend.Backend, error) {
	if len(names) == 0 {
		return backend.All(), nil
	}
	var out []*backend.Backend
	for _, n := range names {
		b, ok := backend.Get(n)
		if !ok {
			return nil, fmt.Errorf("runtimebench: unknown backend %q (have: %v)", n, backend.Names())
		}
		out = append(out, b)
	}
	return out, nil
}

// runCell measures one configuration, mapping the structure kind to its
// typed constructor and driver.
func runCell(o Options, b *backend.Backend, st backend.Structure, g int) Cell {
	cell := Cell{Backend: b.Name, Structure: string(st), Goroutines: g}
	cfg := backend.Config{Goroutines: g + 1, Shards: o.Shards, KeySpace: o.KeySpace}.WithDefaults()
	var sink *obs.TraceSink
	if o.TraceDir != "" {
		sink = obs.NewTraceSink(obs.SinkConfig{Clients: cfg.Goroutines})
		cfg.Trace = sink
	}
	var m metrics
	var err error
	switch st {
	case backend.StructCounter:
		m, err = measure(o, g, b.Counter, cfg, nil,
			func(h backend.Counter, w *worker) { h.Add(1) })
	case backend.StructSet:
		m, err = measure(o, g, b.Set, cfg,
			func(h backend.Set) {
				for k := uint64(2); k <= o.KeySpace; k += 2 {
					h.Insert(k)
				}
			},
			func(h backend.Set, w *worker) {
				k := w.keys.Next()
				switch w.mix.Next() {
				case workload.OpContains:
					h.Contains(k)
				case workload.OpInsert:
					h.Insert(k)
				default:
					h.Remove(k)
				}
			})
	case backend.StructQueue:
		m, err = measure(o, g, b.Queue, cfg,
			func(h backend.Queue) {
				for i := uint64(0); i < 128; i++ {
					h.Enqueue(i)
				}
			},
			func(h backend.Queue, w *worker) {
				if w.toggle = !w.toggle; w.toggle {
					h.Enqueue(w.keys.Next())
				} else {
					h.Dequeue()
				}
			})
	case backend.StructStack:
		m, err = measure(o, g, b.Stack, cfg,
			func(h backend.Stack) {
				for i := uint64(0); i < 128; i++ {
					h.Push(i)
				}
			},
			func(h backend.Stack, w *worker) {
				if w.toggle = !w.toggle; w.toggle {
					h.Push(w.keys.Next())
				} else {
					h.Pop()
				}
			})
	case backend.StructKV:
		m, err = measure(o, g, b.KV, cfg,
			func(h backend.KV) {
				for k := uint64(2); k <= o.KeySpace; k += 2 {
					h.Put(k, k)
				}
			},
			func(h backend.KV, w *worker) {
				k := w.keys.Next()
				switch w.mix.Next() {
				case workload.OpContains:
					h.Get(k)
				case workload.OpInsert:
					h.Put(k, k)
				default:
					h.Delete(k)
				}
			})
	default:
		err = fmt.Errorf("runtimebench: unknown structure %q", st)
	}
	if err != nil {
		cell.Err = err.Error()
		return cell
	}
	cell.Ops = m.ops
	if m.elapsed > 0 {
		cell.Mops = float64(m.ops) / m.elapsed.Seconds() / 1e6
	}
	cell.P50NS = m.hist.Quantile(0.50)
	cell.P95NS = m.hist.Quantile(0.95)
	cell.P99NS = m.hist.Quantile(0.99)
	cell.MeanNS = m.hist.Mean()
	cell.MaxNS = float64(m.hist.Max())
	if sink != nil {
		if path, werr := writeCellTrace(o.TraceDir, cell, sink); werr != nil {
			cell.Err = werr.Error()
		} else {
			cell.Trace = path
		}
	}
	return cell
}

// writeCellTrace exports one cell's capture as Chrome trace JSON. An empty
// capture (a backend that ignores Config.Trace) produces no file and no
// error; path is then "".
func writeCellTrace(dir string, cell Cell, sink *obs.TraceSink) (string, error) {
	evs := sink.Snapshot()
	if len(evs) == 0 {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("trace-%s-%s-%d.json", cell.Backend, cell.Structure, cell.Goroutines))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := obs.WriteChrome(f, evs); err != nil {
		return "", err
	}
	return path, nil
}

// worker carries one goroutine's deterministic workload state.
type worker struct {
	keys   workload.KeyGen
	mix    *workload.Mix
	toggle bool
}

type metrics struct {
	ops     uint64
	elapsed time.Duration
	hist    stats.Histogram
}

// Measurement phases.
const (
	phaseWarmup = iota
	phaseMeasure
	phaseStop
)

// measure runs one cell: construct, prefill through the first handle,
// drive g workers through warmup and a fixed measurement window, then
// close. The generic handle type keeps one copy of the phase/timing/
// histogram machinery across all five structure kinds.
func measure[H any](o Options, g int, construct func(backend.Config) (*backend.Instance[H], error),
	cfg backend.Config, prefill func(H), drive func(H, *worker)) (metrics, error) {
	if construct == nil {
		return metrics{}, fmt.Errorf("structure not supported")
	}
	inst, err := construct(cfg)
	if err != nil {
		return metrics{}, err
	}
	if inst.Close != nil {
		defer inst.Close()
	}
	if prefill != nil {
		prefill(inst.NewHandle())
	}

	handles := make([]H, g)
	workers := make([]*worker, g)
	for i := 0; i < g; i++ {
		handles[i] = inst.NewHandle()
		seed := o.Seed + int64(i)*7919
		var keys workload.KeyGen
		if o.Dist == "zipf" {
			keys = workload.NewZipf(seed, o.ZipfSkew, o.KeySpace)
		} else {
			keys = workload.NewUniform(seed, o.KeySpace)
		}
		workers[i] = &worker{keys: keys, mix: workload.NewMix(seed, o.UpdateRatio)}
	}

	var phase atomic.Uint32
	ops := make([]uint64, g)
	hists := make([]stats.Histogram, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, w := handles[i], workers[i]
			var n uint64
			sampleEvery := uint64(o.SampleEvery)
			for {
				p := phase.Load()
				if p == phaseStop {
					break
				}
				sample := p == phaseMeasure && n%sampleEvery == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				drive(h, w)
				if sample {
					hists[i].Record(uint64(time.Since(t0)))
				}
				if p == phaseMeasure {
					n++
				}
				if o.DelayPauses > 0 {
					workload.DelayN(o.DelayPauses)
				}
			}
			ops[i] = n
		}(i)
	}

	time.Sleep(o.Warmup)
	phase.Store(phaseMeasure)
	t0 := time.Now()
	time.Sleep(o.Duration)
	phase.Store(phaseStop)
	elapsed := time.Since(t0)
	wg.Wait()

	m := metrics{elapsed: elapsed}
	for i := 0; i < g; i++ {
		m.ops += ops[i]
		m.hist.Merge(&hists[i])
	}
	return m, nil
}

// Figures converts the report into one bench.Figure per structure:
// goroutines on x, Mops on y, one series per backend — the same shape
// the simulated experiments produce.
func (r Report) Figures() []bench.Figure {
	byStruct := map[string]map[string][]bench.Point{}
	var structOrder []string
	for _, c := range r.Cells {
		if c.Err != "" {
			continue
		}
		if byStruct[c.Structure] == nil {
			byStruct[c.Structure] = map[string][]bench.Point{}
			structOrder = append(structOrder, c.Structure)
		}
		byStruct[c.Structure][c.Backend] = append(byStruct[c.Structure][c.Backend],
			bench.Point{X: float64(c.Goroutines), Y: c.Mops})
	}
	var figs []bench.Figure
	for _, st := range structOrder {
		series := byStruct[st]
		labels := make([]string, 0, len(series))
		for l := range series {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		fig := bench.Figure{
			ID:     r.Layer + "-" + st,
			Title:  fmt.Sprintf("%s throughput by backend (%s layer, %s)", st, r.Layer, r.Machine),
			XLabel: "goroutines",
			YLabel: "Mops",
		}
		for _, l := range labels {
			pts := series[l]
			sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
			fig.Series = append(fig.Series, bench.Series{Label: l, Points: pts})
		}
		figs = append(figs, fig)
	}
	return figs
}

// JSON renders the report as indented JSON — the BENCH_*.json trajectory
// shape.
func (r Report) JSON() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
