// Package linear records operation histories of delegated data
// structures and checks them for linearizability — the mechanical proof
// behind the repository's exactly-once claim. The paper's contract (§3
// of ffwd, SOSP 2017) is that delegation preserves the sequential
// semantics of the served structure; this package validates that
// contract on real executions, including chaos runs where the server is
// killed mid-flight, wakes are dropped, and clients ride out timeouts
// with retries.
//
// The pieces:
//
//   - Recorder captures concurrent invoke/complete events with a logical
//     clock, producing a history of Ops over the uint64 alphabet of the
//     delegated KV, stack, and queue.
//   - Model is a sequential specification: a canonical state encoding
//     plus a step function that accepts or rejects one operation.
//     KVModel, StackModel, and QueueModel are the built-in instances;
//     KVModel partitions histories per key (linearizability is
//     compositional), keeping the search tractable.
//   - Check runs a Wing&Gong/Lowe-style (WGL) search with memoization:
//     it looks for a linearization — a total order of the operations,
//     consistent with their real-time intervals, that the model accepts.
//
// Operations still in flight when a history is cut (Pending) may
// linearize anywhere after their call or not at all, and their outputs
// are unconstrained — the standard treatment for ops whose fate a crash
// left undecided.
package linear

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
)

// Op kinds. One Model understands a subset; feeding a kind to the wrong
// model fails the check (the step function rejects it).
const (
	KVGet uint8 = iota
	KVSet
	KVDel
	StackPush
	StackPop
	QueueEnq
	QueueDeq
	// TTL alphabet (KVTTLModel): SetTTL and Touch carry a relative TTL in
	// Arg3; Tick advances the store's logical clock (Arg = proposed time,
	// Out = the resulting monotone clock).
	KVSetTTL
	KVTouch
	KVTick
)

// Op is one recorded operation: its kind, arguments, output, and the
// logical-time interval [Call, Ret] it occupied.
type Op struct {
	// Client identifies the issuing client; informational.
	Client int
	// Kind is one of the Op kind constants.
	Kind uint8
	// Arg is the primary argument: the key for KV ops, the pushed or
	// enqueued value for stack/queue ops.
	Arg uint64
	// Arg2 is the secondary argument: the value for KVSet.
	Arg2 uint64
	// Arg3 is the tertiary argument: the relative TTL for KVSetTTL and
	// KVTouch (0 = no expiry).
	Arg3 uint64
	// Out is the output word: the value read by KVGet, popped by
	// StackPop, dequeued by QueueDeq.
	Out uint64
	// OutOK qualifies Out: found for KVGet/KVDel, non-empty for
	// StackPop/QueueDeq.
	OutOK bool
	// Pending marks an operation that never completed before the history
	// was cut: it may linearize anywhere after Call or not at all, and
	// its output is unconstrained.
	Pending bool
	// Call and Ret are the logical invoke/complete times (Ret is
	// math.MaxInt64 while pending).
	Call, Ret int64
}

// Recorder collects a concurrent history. Invoke and Complete may be
// called from any goroutine; the logical clock orders events exactly as
// the recorder observed them.
type Recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Invoke records the start of an operation and returns its history
// index, to be passed to Complete. The op is pending until completed.
func (r *Recorder) Invoke(client int, kind uint8, arg, arg2 uint64) int {
	t := r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, Op{
		Client: client, Kind: kind, Arg: arg, Arg2: arg2,
		Pending: true, Call: t, Ret: math.MaxInt64,
	})
	return len(r.ops) - 1
}

// Invoke3 is Invoke for three-argument operations (KVSetTTL, KVTouch).
func (r *Recorder) Invoke3(client int, kind uint8, arg, arg2, arg3 uint64) int {
	t := r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, Op{
		Client: client, Kind: kind, Arg: arg, Arg2: arg2, Arg3: arg3,
		Pending: true, Call: t, Ret: math.MaxInt64,
	})
	return len(r.ops) - 1
}

// Complete records operation i's completion with its output.
func (r *Recorder) Complete(i int, out uint64, outOK bool) {
	t := r.clock.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	op := &r.ops[i]
	op.Out, op.OutOK = out, outOK
	op.Pending = false
	op.Ret = t
}

// History returns a snapshot of the recorded ops; operations still in
// flight appear with Pending set.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Model is a sequential specification over canonically encoded states.
// States are byte strings: Step must treat its input as immutable and
// return a fresh (or shared-and-unmodified) encoding, because states are
// memoization keys.
type Model struct {
	// Name labels the model in failures.
	Name string
	// Init returns the canonical empty state.
	Init func() []byte
	// Step applies op to state: it returns the successor state and
	// whether the op is legal there (matching outputs, unless the op is
	// pending — then outputs are unconstrained).
	Step func(state []byte, op *Op) ([]byte, bool)
	// Partition, if non-nil, splits a history into independently
	// checkable subhistories (P-compositionality: per-key for a KV).
	Partition func(ops []Op) [][]Op
}

func encWord(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// KVModel returns the per-key register-with-delete specification of the
// delegated KV store: KVGet/KVSet/KVDel over one key, with histories
// partitioned by key. State: empty = absent, 8 bytes = present value.
func KVModel() Model {
	return Model{
		Name: "kv",
		Init: func() []byte { return nil },
		Step: func(state []byte, op *Op) ([]byte, bool) {
			present := len(state) == 8
			switch op.Kind {
			case KVSet:
				return encWord(op.Arg2), true
			case KVGet:
				if op.Pending {
					return state, true
				}
				if op.OutOK != present {
					return nil, false
				}
				if present && op.Out != binary.LittleEndian.Uint64(state) {
					return nil, false
				}
				return state, true
			case KVDel:
				if !op.Pending && op.OutOK != present {
					return nil, false
				}
				return nil, true
			}
			return nil, false
		},
		Partition: func(ops []Op) [][]Op {
			byKey := make(map[uint64][]Op)
			var keys []uint64
			for _, op := range ops {
				if _, seen := byKey[op.Arg]; !seen {
					keys = append(keys, op.Arg)
				}
				byKey[op.Arg] = append(byKey[op.Arg], op)
			}
			parts := make([][]Op, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, byKey[k])
			}
			return parts
		},
	}
}

// ttlMaxExpiry mirrors the store's overflow clamp: clock+ttl sums that
// would wrap land here instead ("effectively never", but not the
// no-expiry sentinel 0).
const ttlMaxExpiry = ^uint64(0) - 1

// ttlDeadline mirrors the store's deadline computation: 0 TTL means no
// expiry; an overflowing sum clamps to ttlMaxExpiry.
func ttlDeadline(clock, ttl uint64) uint64 {
	if ttl == 0 {
		return 0
	}
	d := clock + ttl
	if d < clock || d > ttlMaxExpiry {
		return ttlMaxExpiry
	}
	return d
}

// encTTL encodes a KVTTLModel state: 8 bytes of clock, plus (value,
// deadline) when the key is resident.
func encTTL(clock uint64, present bool, value, deadline uint64) []byte {
	n := 8
	if present {
		n = 24
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b[:8], clock)
	if present {
		binary.LittleEndian.PutUint64(b[8:16], value)
		binary.LittleEndian.PutUint64(b[16:24], deadline)
	}
	return b
}

// KVTTLModel returns the per-key specification of the KV store with
// server-owned time: KVGet/KVSet/KVDel plus KVSetTTL (deadline fixed at
// the op's linearization point: clock+TTL), KVTouch (refresh, alive keys
// only), and KVTick (monotone clock advance). A resident entry whose
// deadline has passed reads as absent everywhere — the store guarantees
// this independent of how far its timer wheel has drained, which is what
// makes this sequential model deterministic.
//
// State per key: clock ‖ [value ‖ deadline]. Histories partition per
// key; KVTick ops (which carry no key) are broadcast into every
// partition. That stays sound — a global linearization induces a valid
// per-key order including the ticks, so a real violation is never
// masked — at the usual price of per-key checking being weaker than a
// single global search.
func KVTTLModel() Model {
	return Model{
		Name: "kv-ttl",
		Init: func() []byte { return encTTL(0, false, 0, 0) },
		Step: func(state []byte, op *Op) ([]byte, bool) {
			clock := binary.LittleEndian.Uint64(state[:8])
			present := len(state) == 24
			var value, deadline uint64
			if present {
				value = binary.LittleEndian.Uint64(state[8:16])
				deadline = binary.LittleEndian.Uint64(state[16:24])
			}
			alive := present && (deadline == 0 || clock < deadline)
			switch op.Kind {
			case KVTick:
				next := clock
				if op.Arg > next {
					next = op.Arg
				}
				if !op.Pending && op.Out != next {
					return nil, false
				}
				return encTTL(next, present, value, deadline), true
			case KVSet:
				if alive {
					// Updating a live entry keeps its expiry.
					return encTTL(clock, true, op.Arg2, deadline), true
				}
				return encTTL(clock, true, op.Arg2, 0), true
			case KVSetTTL:
				return encTTL(clock, true, op.Arg2, ttlDeadline(clock, op.Arg3)), true
			case KVTouch:
				if !op.Pending && op.OutOK != alive {
					return nil, false
				}
				if !alive {
					// A touch that found nothing (or a dead entry, which it
					// reclaims) changes nothing observable.
					return encTTL(clock, false, 0, 0), true
				}
				return encTTL(clock, true, value, ttlDeadline(clock, op.Arg3)), true
			case KVGet:
				if op.Pending {
					return state, true
				}
				if op.OutOK != alive {
					return nil, false
				}
				if alive && op.Out != value {
					return nil, false
				}
				return state, true
			case KVDel:
				if !op.Pending && op.OutOK != alive {
					return nil, false
				}
				return encTTL(clock, false, 0, 0), true
			}
			return nil, false
		},
		Partition: func(ops []Op) [][]Op {
			var keys []uint64
			seen := make(map[uint64]bool)
			keyed := false
			for _, op := range ops {
				if op.Kind == KVTick {
					continue
				}
				keyed = true
				if !seen[op.Arg] {
					seen[op.Arg] = true
					keys = append(keys, op.Arg)
				}
			}
			if !keyed {
				if len(ops) == 0 {
					return nil
				}
				return [][]Op{ops}
			}
			parts := make([][]Op, 0, len(keys))
			for _, k := range keys {
				var part []Op
				for _, op := range ops {
					if op.Kind == KVTick || op.Arg == k {
						part = append(part, op)
					}
				}
				parts = append(parts, part)
			}
			return parts
		},
	}
}

// seqState encodes a sequence of words as a byte string.
func seqAppend(state []byte, v uint64) []byte {
	out := make([]byte, len(state)+8)
	copy(out, state)
	binary.LittleEndian.PutUint64(out[len(state):], v)
	return out
}

// StackModel returns the LIFO specification: StackPush(v) and
// StackPop → (v, true) or (_, false) on empty. State: values bottom to
// top, 8 bytes each.
func StackModel() Model {
	return Model{
		Name: "stack",
		Init: func() []byte { return nil },
		Step: func(state []byte, op *Op) ([]byte, bool) {
			switch op.Kind {
			case StackPush:
				return seqAppend(state, op.Arg), true
			case StackPop:
				if len(state) == 0 {
					if !op.Pending && op.OutOK {
						return nil, false
					}
					return state, true
				}
				top := binary.LittleEndian.Uint64(state[len(state)-8:])
				if !op.Pending && (!op.OutOK || op.Out != top) {
					return nil, false
				}
				return state[:len(state)-8], true
			}
			return nil, false
		},
	}
}

// QueueModel returns the FIFO specification: QueueEnq(v) and
// QueueDeq → (v, true) or (_, false) on empty. State: values front to
// back, 8 bytes each.
func QueueModel() Model {
	return Model{
		Name: "queue",
		Init: func() []byte { return nil },
		Step: func(state []byte, op *Op) ([]byte, bool) {
			switch op.Kind {
			case QueueEnq:
				return seqAppend(state, op.Arg), true
			case QueueDeq:
				if len(state) == 0 {
					if !op.Pending && op.OutOK {
						return nil, false
					}
					return state, true
				}
				front := binary.LittleEndian.Uint64(state[:8])
				if !op.Pending && (!op.OutOK || op.Out != front) {
					return nil, false
				}
				return state[8:], true
			}
			return nil, false
		},
	}
}
