package linear

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ffwd/internal/apps"
	"ffwd/internal/core"
	"ffwd/internal/fault"
)

// TestChaosKVTTLLinearizable drives the real delegated KV store — timer
// wheel, scan-resistant LRU, server-owned clock — through an expiry
// storm with the fault mix killing the server mid-storm: workers write
// short-TTL keys, jump the logical clock (each jump expires a batch),
// touch and read concurrently, all with exactly-once retries. The
// recorded history must satisfy the KV-with-TTL sequential model: no
// read may observe a key past its deadline, no touch may resurrect one,
// no crash/restart/replay may double-apply a write or lose an expiry.
func TestChaosKVTTLLinearizable(t *testing.T) {
	const workers, opsEach, keys = 3, 70, 5
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			plan := fault.FromSeed(seed + 3000).Plan()
			plan.KillAtOp = 15 + seed%20
			plan.KillEvery = 60 + seed%50
			inj := fault.New(plan)
			t.Logf("plan: %v", inj)
			d := apps.NewDelegatedKVConfig(1<<12, core.Config{
				MaxClients: workers + 1,
				Hooks:      inj,
			})
			if err := d.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(d.Stop)
			sv := core.NewSupervisor(d.Server(), core.SupervisorConfig{Interval: time.Millisecond, KickAfter: 2})
			sv.Start()
			t.Cleanup(sv.Stop)

			// The clock only moves through recorded KVTick ops, so the
			// checker sees every advance. Proposals grow monotonically
			// across workers; each jump strands a batch of short TTLs
			// behind the clock — the storm the wheel has to drain.
			var clockHigh atomic.Uint64
			rec := NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				rng := seed<<32 | uint64(w)
				w := w
				go func() {
					defer wg.Done()
					c, err := d.NewClient()
					if err != nil {
						t.Error(err)
						return
					}
					for i := 0; i < opsEach; i++ {
						k := splitmix(&rng) % keys
						v := uint64(w+1)<<32 | uint64(i+1)
						switch splitmix(&rng) % 10 {
						case 0, 1, 2: // short-TTL write: storm fodder
							ttl := 1 + splitmix(&rng)%16
							idx := rec.Invoke3(w, KVSetTTL, k, v, ttl)
							if err := c.SetTTLNowRetry(retryPolicy, 5*time.Millisecond, k, v, ttl); err != nil {
								if isInjectedPanic(err) {
									continue
								}
								t.Errorf("worker %d setttl: %v", w, err)
								return
							}
							rec.Complete(idx, 0, false)
						case 3: // immortal write
							idx := rec.Invoke(w, KVSet, k, v)
							if err := c.SetRetry(retryPolicy, 5*time.Millisecond, k, v); err != nil {
								if isInjectedPanic(err) {
									continue
								}
								t.Errorf("worker %d set: %v", w, err)
								return
							}
							rec.Complete(idx, 0, false)
						case 4: // touch
							ttl := splitmix(&rng) % 24 // 0 sometimes: clears expiry
							idx := rec.Invoke3(w, KVTouch, k, 0, ttl)
							ok, err := c.TouchRetry(retryPolicy, 5*time.Millisecond, k, ttl)
							if err != nil {
								if isInjectedPanic(err) {
									continue
								}
								t.Errorf("worker %d touch: %v", w, err)
								return
							}
							rec.Complete(idx, 0, ok)
						case 5, 6: // clock jump: expires a batch at once
							now := clockHigh.Add(1 + splitmix(&rng)%8)
							idx := rec.Invoke(w, KVTick, now, 0)
							got, err := c.AdvanceClockRetry(retryPolicy, 5*time.Millisecond, now)
							if err != nil {
								if isInjectedPanic(err) {
									continue
								}
								t.Errorf("worker %d tick: %v", w, err)
								return
							}
							rec.Complete(idx, got, true)
						default: // get
							idx := rec.Invoke(w, KVGet, k, 0)
							v, ok, err := c.GetRetry(retryPolicy, 5*time.Millisecond, k)
							if err != nil {
								if isInjectedPanic(err) {
									continue
								}
								t.Errorf("worker %d get: %v", w, err)
								return
							}
							rec.Complete(idx, v, ok)
						}
					}
				}()
			}
			wg.Wait()
			hh := rec.History()
			if p := FailingPartition(KVTTLModel(), hh); p >= 0 {
				t.Fatalf("chaos KV-TTL history not linearizable (partition %d of %d ops)", p, len(hh))
			}
			c, err := d.NewClient()
			if err != nil {
				t.Fatal(err)
			}
			_, _, _, expired := c.Stats()
			st := d.Server().Stats()
			t.Logf("kv-ttl: %d ops, expired=%d crashes=%d restarts=%d ledger-skips=%d maintain-runs=%d maintain-units=%d",
				len(hh), expired, st.ServerCrashes, st.Restarts, st.LedgerSkips,
				st.BackgroundRuns, st.BackgroundUnits)
			if st.ServerCrashes == 0 || st.LedgerSkips == 0 {
				t.Fatalf("run exercised crashes=%d ledger-skips=%d; the kill threshold missed the workload",
					st.ServerCrashes, st.LedgerSkips)
			}
			if expired == 0 {
				t.Fatal("no entry ever expired; this was no expiry storm")
			}

			// Mutant leg: a read that claims to see a value past its
			// deadline must be rejected, proving the TTL dimension of the
			// checker bites on real histories.
			mutant := make([]Op, len(hh))
			copy(mutant, hh)
			mutated := false
			for i := range mutant {
				if mutant[i].Kind == KVGet && !mutant[i].Pending && !mutant[i].OutOK {
					mutant[i].Out, mutant[i].OutOK = 0xdead0000dead, true
					mutated = true
					break
				}
			}
			if !mutated {
				t.Fatal("no successful miss recorded; widen the workload")
			}
			if Check(KVTTLModel(), mutant) {
				t.Fatal("mutated real history accepted: the TTL checker is vacuous")
			}
		})
	}
}
