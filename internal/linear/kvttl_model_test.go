package linear

import "testing"

// seqOps builds a sequential (non-overlapping) history from compact op
// descriptors — each op's interval strictly follows the previous one.
func seqOps(t *testing.T, descs []Op) []Op {
	t.Helper()
	ops := make([]Op, len(descs))
	for i, d := range descs {
		d.Call = int64(2*i + 1)
		d.Ret = int64(2*i + 2)
		ops[i] = d
	}
	return ops
}

func TestKVTTLModelSequential(t *testing.T) {
	m := KVTTLModel()
	// A legal life of one key: born with TTL 10 at clock 0, read alive at
	// clock 5, touched to 5+20, still alive at 24, dead at 25.
	good := seqOps(t, []Op{
		{Kind: KVSetTTL, Arg: 1, Arg2: 100, Arg3: 10},
		{Kind: KVTick, Arg: 5, Out: 5, OutOK: true},
		{Kind: KVGet, Arg: 1, Out: 100, OutOK: true},
		{Kind: KVTouch, Arg: 1, Arg3: 20, OutOK: true},
		{Kind: KVTick, Arg: 24, Out: 24, OutOK: true},
		{Kind: KVGet, Arg: 1, Out: 100, OutOK: true},
		{Kind: KVTick, Arg: 25, Out: 25, OutOK: true},
		{Kind: KVGet, Arg: 1, OutOK: false},
		{Kind: KVTouch, Arg: 1, Arg3: 99, OutOK: false},
	})
	if !Check(m, good) {
		t.Fatal("legal TTL history rejected")
	}
	// The same history with the post-deadline read claiming a hit must be
	// rejected: expiry is part of the specification.
	bad := append([]Op(nil), good...)
	bad[7].Out, bad[7].OutOK = 100, true
	if Check(m, bad) {
		t.Fatal("read of an expired key accepted")
	}
	// A touch that resurrects a dead key must be rejected too.
	bad = append([]Op(nil), good...)
	bad[8].OutOK = true
	if Check(m, bad) {
		t.Fatal("touch of an expired key accepted")
	}
}

func TestKVTTLModelClockRules(t *testing.T) {
	m := KVTTLModel()
	// The clock is a monotone join: a stale tick returns the current
	// clock, not its own proposal.
	good := seqOps(t, []Op{
		{Kind: KVTick, Arg: 50, Out: 50, OutOK: true},
		{Kind: KVTick, Arg: 10, Out: 50, OutOK: true},
		{Kind: KVSetTTL, Arg: 7, Arg2: 1, Arg3: ^uint64(0)}, // overflow clamp
		{Kind: KVTick, Arg: 1 << 62, Out: 1 << 62, OutOK: true},
		{Kind: KVGet, Arg: 7, Out: 1, OutOK: true}, // clamped, not wrapped dead
	})
	if !Check(m, good) {
		t.Fatal("legal clock history rejected")
	}
	bad := append([]Op(nil), good...)
	bad[1].Out = 10 // claims the clock went backwards
	if Check(m, bad) {
		t.Fatal("non-monotone tick output accepted")
	}
}

func TestKVTTLModelSetSemantics(t *testing.T) {
	m := KVTTLModel()
	// Plain Set on a live TTL'd entry keeps the deadline; on a dead one it
	// starts a fresh immortal entry.
	good := seqOps(t, []Op{
		{Kind: KVSetTTL, Arg: 1, Arg2: 5, Arg3: 10},
		{Kind: KVSet, Arg: 1, Arg2: 6},
		{Kind: KVTick, Arg: 10, Out: 10, OutOK: true},
		{Kind: KVGet, Arg: 1, OutOK: false}, // update kept the deadline
		{Kind: KVSetTTL, Arg: 2, Arg2: 7, Arg3: 5},
		{Kind: KVTick, Arg: 100, Out: 100, OutOK: true},
		{Kind: KVSet, Arg: 2, Arg2: 8}, // dead entry: fresh immortal insert
		{Kind: KVTick, Arg: 1 << 40, Out: 1 << 40, OutOK: true},
		{Kind: KVGet, Arg: 2, Out: 8, OutOK: true},
		{Kind: KVDel, Arg: 1, OutOK: false}, // expired reads as absent
	})
	if !Check(m, good) {
		t.Fatal("legal set-semantics history rejected")
	}
	bad := append([]Op(nil), good...)
	bad[3].Out, bad[3].OutOK = 6, true // update must not shed the deadline
	if Check(m, bad) {
		t.Fatal("deadline-shedding update accepted")
	}
}

// Concurrent intervals: a read overlapping the tick that kills its key
// may legally land on either side of it.
func TestKVTTLModelConcurrency(t *testing.T) {
	m := KVTTLModel()
	h := []Op{
		{Kind: KVSetTTL, Arg: 1, Arg2: 9, Arg3: 10, Call: 1, Ret: 2},
		{Kind: KVTick, Arg: 10, Out: 10, OutOK: true, Call: 3, Ret: 6},
		{Kind: KVGet, Arg: 1, Out: 9, OutOK: true, Call: 4, Ret: 5}, // before the tick
	}
	if !Check(m, h) {
		t.Fatal("read concurrent with killing tick (hit) rejected")
	}
	h[2].Out, h[2].OutOK = 0, false // after the tick
	if !Check(m, h) {
		t.Fatal("read concurrent with killing tick (miss) rejected")
	}
	// But once the tick has returned, a later read cannot still hit.
	h[2].Call, h[2].Ret = 7, 8
	h[2].Out, h[2].OutOK = 9, true
	if Check(m, h) {
		t.Fatal("stale read after completed tick accepted")
	}
}
