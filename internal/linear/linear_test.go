package linear

import (
	"math"
	"testing"
)

// h builds a completed op.
func h(client int, kind uint8, arg, arg2, out uint64, outOK bool, call, ret int64) Op {
	return Op{Client: client, Kind: kind, Arg: arg, Arg2: arg2, Out: out, OutOK: outOK, Call: call, Ret: ret}
}

// hp builds a pending op.
func hp(client int, kind uint8, arg, arg2 uint64, call int64) Op {
	return Op{Client: client, Kind: kind, Arg: arg, Arg2: arg2, Pending: true, Call: call, Ret: math.MaxInt64}
}

func TestKVSequentialHistories(t *testing.T) {
	m := KVModel()
	legal := []Op{
		h(0, KVGet, 1, 0, 0, false, 1, 2),  // miss before any set
		h(0, KVSet, 1, 10, 0, false, 3, 4), // set 1=10
		h(0, KVGet, 1, 0, 10, true, 5, 6),  // read it back
		h(0, KVDel, 1, 0, 0, true, 7, 8),   // delete: present
		h(0, KVGet, 1, 0, 0, false, 9, 10), // miss again
		h(0, KVDel, 1, 0, 0, false, 11, 12),
	}
	if !Check(m, legal) {
		t.Fatal("legal sequential KV history rejected")
	}
	stale := []Op{
		h(0, KVSet, 1, 10, 0, false, 1, 2),
		h(0, KVSet, 1, 20, 0, false, 3, 4),
		h(0, KVGet, 1, 0, 10, true, 5, 6), // stale read after both sets completed
	}
	if Check(m, stale) {
		t.Fatal("stale sequential read accepted")
	}
}

func TestKVConcurrentOverlap(t *testing.T) {
	m := KVModel()
	// A get overlapping two sets may return either value...
	overlap := []Op{
		h(0, KVSet, 1, 10, 0, false, 1, 10),
		h(1, KVSet, 1, 20, 0, false, 2, 9),
		h(2, KVGet, 1, 0, 20, true, 3, 8),
		h(2, KVGet, 1, 0, 10, true, 11, 12), // ...and the final state can be either order's
	}
	if !Check(m, overlap) {
		t.Fatal("legal overlapping KV history rejected")
	}
	// ...but not a value never written.
	phantom := []Op{
		h(0, KVSet, 1, 10, 0, false, 1, 10),
		h(1, KVSet, 1, 20, 0, false, 2, 9),
		h(2, KVGet, 1, 0, 30, true, 3, 8),
	}
	if Check(m, phantom) {
		t.Fatal("phantom read accepted")
	}
}

func TestKVPartitionIndependence(t *testing.T) {
	m := KVModel()
	// Key 1's history is legal, key 2's is broken: the failing partition
	// must be key 2's, and the whole history must be rejected.
	hh := []Op{
		h(0, KVSet, 1, 10, 0, false, 1, 2),
		h(0, KVGet, 1, 0, 10, true, 3, 4),
		h(0, KVSet, 2, 50, 0, false, 5, 6),
		h(0, KVGet, 2, 0, 51, true, 7, 8),
	}
	if Check(m, hh) {
		t.Fatal("history with one broken key accepted")
	}
	if p := FailingPartition(m, hh); p != 1 {
		t.Fatalf("FailingPartition = %d, want 1 (key 2's subhistory)", p)
	}
}

func TestKVPendingOps(t *testing.T) {
	m := KVModel()
	// A pending set may or may not have landed: both later reads are
	// legal in one history only if the set can be placed between them —
	// it can: miss first, then the pending set applies, then the hit.
	flexible := []Op{
		hp(0, KVSet, 1, 10, 1),
		h(1, KVGet, 1, 0, 0, false, 2, 3),
		h(1, KVGet, 1, 0, 10, true, 4, 5),
	}
	if !Check(m, flexible) {
		t.Fatal("pending set straddling a miss and a hit rejected")
	}
	// But a pending set cannot take effect before its call.
	early := []Op{
		h(1, KVGet, 1, 0, 10, true, 1, 2),
		hp(0, KVSet, 1, 10, 3),
	}
	if Check(m, early) {
		t.Fatal("pending set linearized before its call")
	}
}

func TestStackHistories(t *testing.T) {
	m := StackModel()
	legal := []Op{
		h(0, StackPush, 1, 0, 0, false, 1, 2),
		h(0, StackPush, 2, 0, 0, false, 3, 4),
		h(0, StackPop, 0, 0, 2, true, 5, 6),
		h(0, StackPop, 0, 0, 1, true, 7, 8),
		h(0, StackPop, 0, 0, 0, false, 9, 10), // empty
	}
	if !Check(m, legal) {
		t.Fatal("legal LIFO history rejected")
	}
	fifoOrder := []Op{
		h(0, StackPush, 1, 0, 0, false, 1, 2),
		h(0, StackPush, 2, 0, 0, false, 3, 4),
		h(0, StackPop, 0, 0, 1, true, 5, 6), // FIFO order out of a stack
	}
	if Check(m, fifoOrder) {
		t.Fatal("FIFO pop order accepted by the stack model")
	}
	// A double pop of one pushed value is exactly what a re-executed
	// (at-least-once) push would produce — the checker must reject it.
	doublePop := []Op{
		h(0, StackPush, 7, 0, 0, false, 1, 2),
		h(0, StackPop, 0, 0, 7, true, 3, 4),
		h(0, StackPop, 0, 0, 7, true, 5, 6),
	}
	if Check(m, doublePop) {
		t.Fatal("duplicated pop (a double-applied push) accepted")
	}
}

func TestQueueHistories(t *testing.T) {
	m := QueueModel()
	legal := []Op{
		h(0, QueueEnq, 1, 0, 0, false, 1, 2),
		h(1, QueueEnq, 2, 0, 0, false, 3, 4),
		h(0, QueueDeq, 0, 0, 1, true, 5, 6),
		h(1, QueueDeq, 0, 0, 2, true, 7, 8),
		h(0, QueueDeq, 0, 0, 0, false, 9, 10),
	}
	if !Check(m, legal) {
		t.Fatal("legal FIFO history rejected")
	}
	lifoOrder := []Op{
		h(0, QueueEnq, 1, 0, 0, false, 1, 2),
		h(0, QueueEnq, 2, 0, 0, false, 3, 4),
		h(0, QueueDeq, 0, 0, 2, true, 5, 6),
	}
	if Check(m, lifoOrder) {
		t.Fatal("LIFO dequeue order accepted by the queue model")
	}
	// Concurrent enqueues may land in either order.
	race := []Op{
		h(0, QueueEnq, 1, 0, 0, false, 1, 4),
		h(1, QueueEnq, 2, 0, 0, false, 2, 3),
		h(0, QueueDeq, 0, 0, 2, true, 5, 6),
		h(0, QueueDeq, 0, 0, 1, true, 7, 8),
	}
	if !Check(m, race) {
		t.Fatal("legal racing-enqueue history rejected")
	}
}

// TestRecorderProducesCheckableHistories drives the recorder directly
// and round-trips through the checker.
func TestRecorderProducesCheckableHistories(t *testing.T) {
	r := NewRecorder()
	i := r.Invoke(0, KVSet, 1, 10)
	r.Complete(i, 0, false)
	i = r.Invoke(0, KVGet, 1, 0)
	r.Complete(i, 10, true)
	j := r.Invoke(1, KVSet, 1, 20) // left pending
	_ = j
	hh := r.History()
	if len(hh) != 3 || !hh[2].Pending {
		t.Fatalf("history = %+v", hh)
	}
	if !Check(KVModel(), hh) {
		t.Fatal("recorded history rejected")
	}
}

// TestMutantHistoryRejected is the checker's own regression: a recorded
// legal history, mutated in one output word, must be rejected — proving
// the checker has teeth rather than vacuously passing everything.
func TestMutantHistoryRejected(t *testing.T) {
	r := NewRecorder()
	for v := uint64(1); v <= 4; v++ {
		i := r.Invoke(0, StackPush, 100+v, 0)
		r.Complete(i, 0, false)
	}
	for v := uint64(4); v >= 1; v-- {
		i := r.Invoke(0, StackPop, 0, 0)
		r.Complete(i, 100+v, true)
	}
	hh := r.History()
	if !Check(StackModel(), hh) {
		t.Fatal("legal recorded history rejected")
	}
	mutant := make([]Op, len(hh))
	copy(mutant, hh)
	mutant[5].Out = 999 // a value never pushed
	if Check(StackModel(), mutant) {
		t.Fatal("mutant history accepted: the checker is vacuous")
	}
}
