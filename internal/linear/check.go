package linear

import "sort"

// Check reports whether history h is linearizable under model m: whether
// some total order of the operations, consistent with every operation's
// real-time interval, is accepted by the sequential specification.
// Completed operations must all be linearized with matching outputs;
// pending operations may take effect at any point after their call or
// never.
func Check(m Model, h []Op) bool { return FailingPartition(m, h) < 0 }

// FailingPartition is Check with a diagnosis: it returns the index of
// the first subhistory (per m.Partition; the whole history is partition
// 0 when m.Partition is nil) that admits no linearization, or -1 if the
// history is linearizable.
func FailingPartition(m Model, h []Op) int {
	parts := [][]Op{h}
	if m.Partition != nil {
		parts = m.Partition(h)
	}
	for i, part := range parts {
		if !checkOne(m, part) {
			return i
		}
	}
	return -1
}

// checker holds one WGL search: the subhistory, the linearized-set
// bitmask, and the memoized set of (mask, state) configurations already
// proven dead.
type checker struct {
	m    Model
	ops  []Op
	mask []uint64
	dead map[string]struct{}
	key  []byte // scratch for memo keys
}

// checkOne runs the WGL search over one subhistory.
func checkOne(m Model, ops []Op) bool {
	// Sorting by call time makes candidate scans hit minimal ops early;
	// correctness does not depend on it.
	sorted := make([]Op, len(ops))
	copy(sorted, ops)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })
	remaining := 0
	for i := range sorted {
		if !sorted[i].Pending {
			remaining++
		}
	}
	c := &checker{
		m:    m,
		ops:  sorted,
		mask: make([]uint64, (len(sorted)+63)/64),
		dead: make(map[string]struct{}),
	}
	return c.dfs(m.Init(), remaining)
}

func (c *checker) taken(i int) bool { return c.mask[i/64]&(1<<uint(i%64)) != 0 }
func (c *checker) take(i int)       { c.mask[i/64] |= 1 << uint(i%64) }
func (c *checker) untake(i int)     { c.mask[i/64] &^= 1 << uint(i%64) }

// memoKey encodes (mask, state) as one string.
func (c *checker) memoKey(state []byte) string {
	c.key = c.key[:0]
	for _, w := range c.mask {
		c.key = append(c.key,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	c.key = append(c.key, 0xff)
	c.key = append(c.key, state...)
	return string(c.key)
}

// dfs searches for a linearization of the remaining operations from
// state. remaining counts unlinearized completed ops; pending ops left
// over at the end are legal (they simply never took effect).
func (c *checker) dfs(state []byte, remaining int) bool {
	if remaining == 0 {
		return true
	}
	key := c.memoKey(state)
	if _, seen := c.dead[key]; seen {
		return false
	}
	// minRet is the earliest return among remaining completed ops: an op
	// can linearize first iff it was called before every other remaining
	// op returned, i.e. iff its call precedes minRet (ties cannot occur —
	// the logical clock is strictly increasing — and an op's own return
	// never excludes it, since Call < Ret).
	minRet := int64(1<<63 - 1)
	for i := range c.ops {
		if !c.taken(i) && !c.ops[i].Pending && c.ops[i].Ret < minRet {
			minRet = c.ops[i].Ret
		}
	}
	for i := range c.ops {
		op := &c.ops[i]
		if c.taken(i) || op.Call > minRet {
			continue
		}
		next, ok := c.m.Step(state, op)
		if !ok {
			continue
		}
		rem := remaining
		if !op.Pending {
			rem--
		}
		c.take(i)
		if c.dfs(next, rem) {
			return true
		}
		c.untake(i)
	}
	c.dead[key] = struct{}{}
	return false
}
