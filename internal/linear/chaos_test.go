package linear

import (
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"ffwd/internal/core"
	"ffwd/internal/fault"
)

// The chaos-seeded linearizability suite: real delegated structures are
// driven through internal/fault's injected failures (supervisor kills
// mid-flight, dropped wakes, slow and panicking calls) while every
// operation is recorded; the histories must stay linearizable with
// exactly-once effects. Run via `make linear` (two seeds) or with
// FFWD_CHAOS_SEED=n for a single seed.

func chaosSeeds(t *testing.T) []uint64 {
	t.Helper()
	seeds, err := fault.SeedsFromEnv(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	return seeds
}

// retryPolicy is generous: chaos runs must complete every op eventually
// so the recorded histories have few pending tails.
var retryPolicy = core.RetryPolicy{
	MaxAttempts: 400,
	BaseDelay:   100 * time.Microsecond,
	MaxDelay:    2 * time.Millisecond,
}

// chaosServer builds a supervised, fault-injected delegation server.
// The plan is FromSeed's mixed-fault derivation with the kill threshold
// pulled down into this suite's op range, so every run really crosses
// crash/restart/ledger-replay territory.
func chaosServer(t *testing.T, seed uint64, maxClients int) (*core.Server, *fault.Injector) {
	t.Helper()
	plan := fault.FromSeed(seed).Plan()
	plan.KillAtOp = 15 + seed%20
	plan.KillEvery = 60 + seed%50
	inj := fault.New(plan)
	t.Logf("plan: %v", inj)
	s := core.NewServer(core.Config{MaxClients: maxClients, Hooks: inj})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	sv := core.NewSupervisor(s, core.SupervisorConfig{Interval: time.Millisecond, KickAfter: 2})
	sv.Start()
	t.Cleanup(sv.Stop)
	return s, inj
}

// isInjectedPanic reports whether err is a recovered delegated-call
// panic. The fault fires inside the recovery scope before the function
// body runs, so the op provably never took effect: its recorded
// invocation is left pending, which the checker reads as "may never
// linearize" — exactly right for an op without an effect.
func isInjectedPanic(err error) bool {
	var rec *core.PanicRecord
	return errors.As(err, &rec)
}

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestChaosKVLinearizable drives a delegated KV map through a full fault
// mix with concurrent clients using exactly-once retries, then checks
// the recorded history against the sequential KV specification — and
// proves the checker bites by mutating one real read.
func TestChaosKVLinearizable(t *testing.T) {
	const workers, opsEach, keys = 4, 80, 6
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			s, _ := chaosServer(t, seed, workers)
			kv := make(map[uint64]uint64)
			fidGet := s.Register(func(a *[core.MaxArgs]uint64) uint64 {
				v, ok := kv[a[0]]
				if !ok {
					return ^uint64(0) // miss sentinel; values stay below it
				}
				return v
			})
			fidSet := s.Register(func(a *[core.MaxArgs]uint64) uint64 {
				kv[a[0]] = a[1]
				return 0
			})
			fidDel := s.Register(func(a *[core.MaxArgs]uint64) uint64 {
				if _, ok := kv[a[0]]; ok {
					delete(kv, a[0])
					return 1
				}
				return 0
			})

			rec := NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				rng := seed<<8 | uint64(w)
				w := w
				go func() {
					defer wg.Done()
					c := s.MustNewClient()
					defer c.Close()
					for i := 0; i < opsEach; i++ {
						k := splitmix(&rng) % keys
						// Values are unique per (worker, op): any
						// double-applied or lost write is visible to
						// the checker.
						v := uint64(w+1)<<32 | uint64(i+1)
						switch splitmix(&rng) % 10 {
						case 0, 1, 2: // set
							idx := rec.Invoke(w, KVSet, k, v)
							if _, err := c.DelegateRetry(retryPolicy, 5*time.Millisecond, fidSet, k, v); err != nil {
								if isInjectedPanic(err) {
									continue // never applied; op stays pending
								}
								t.Errorf("worker %d set: %v", w, err)
								return
							}
							rec.Complete(idx, 0, false)
						case 3: // delete
							idx := rec.Invoke(w, KVDel, k, 0)
							ret, err := c.DelegateRetry(retryPolicy, 5*time.Millisecond, fidDel, k)
							if err != nil {
								if isInjectedPanic(err) {
									continue // never applied; op stays pending
								}
								t.Errorf("worker %d del: %v", w, err)
								return
							}
							rec.Complete(idx, 0, ret == 1)
						default: // get
							idx := rec.Invoke(w, KVGet, k, 0)
							ret, err := c.DelegateRetry(retryPolicy, 5*time.Millisecond, fidGet, k)
							if err != nil {
								if isInjectedPanic(err) {
									continue // never applied; op stays pending
								}
								t.Errorf("worker %d get: %v", w, err)
								return
							}
							if ret == ^uint64(0) {
								rec.Complete(idx, 0, false)
							} else {
								rec.Complete(idx, ret, true)
							}
						}
					}
				}()
			}
			wg.Wait()
			hh := rec.History()
			if p := FailingPartition(KVModel(), hh); p >= 0 {
				t.Fatalf("chaos KV history not linearizable (partition %d of %d ops)", p, len(hh))
			}
			st := s.Stats()
			t.Logf("kv: %d ops, crashes=%d restarts=%d ledger-skips=%d retry-waits=%d",
				len(hh), st.ServerCrashes, st.Restarts, st.LedgerSkips, st.RetryWaits)
			if st.ServerCrashes == 0 || st.LedgerSkips == 0 {
				t.Fatalf("run exercised crashes=%d ledger-skips=%d; the kill threshold missed the workload",
					st.ServerCrashes, st.LedgerSkips)
			}

			// The seeded-mutant leg: corrupt one successful real read to
			// a value no worker ever wrote; the checker must reject it.
			mutant := make([]Op, len(hh))
			copy(mutant, hh)
			mutated := false
			for i := range mutant {
				if mutant[i].Kind == KVGet && !mutant[i].Pending && mutant[i].OutOK {
					mutant[i].Out = 0xdead0000dead
					mutated = true
					break
				}
			}
			if !mutated {
				t.Fatal("no successful read recorded; widen the workload")
			}
			if Check(KVModel(), mutant) {
				t.Fatal("mutated real history accepted: the checker is vacuous on this alphabet")
			}
		})
	}
}

// TestChaosStackExactlyOnce drives a delegated stack — where a
// re-executed push is directly visible as a duplicated pop — through the
// fault mix. Linearizability of the recorded history with unique push
// values IS the exactly-once proof for non-idempotent ops.
func TestChaosStackExactlyOnce(t *testing.T) {
	const workers, opsEach = 3, 60
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			s, _ := chaosServer(t, seed+1000, workers)
			var stack []uint64
			fidPush := s.Register(func(a *[core.MaxArgs]uint64) uint64 {
				stack = append(stack, a[0])
				return 0
			})
			fidPop := s.Register(func(*[core.MaxArgs]uint64) uint64 {
				if len(stack) == 0 {
					return ^uint64(0)
				}
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				return v
			})

			rec := NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				rng := seed<<16 | uint64(w)
				w := w
				go func() {
					defer wg.Done()
					c := s.MustNewClient()
					defer c.Close()
					for i := 0; i < opsEach; i++ {
						if splitmix(&rng)%2 == 0 {
							v := uint64(w+1)<<32 | uint64(i+1)
							idx := rec.Invoke(w, StackPush, v, 0)
							if _, err := c.DelegateRetry(retryPolicy, 5*time.Millisecond, fidPush, v); err != nil {
								if isInjectedPanic(err) {
									continue // never applied; op stays pending
								}
								t.Errorf("worker %d push: %v", w, err)
								return
							}
							rec.Complete(idx, 0, false)
						} else {
							idx := rec.Invoke(w, StackPop, 0, 0)
							ret, err := c.DelegateRetry(retryPolicy, 5*time.Millisecond, fidPop)
							if err != nil {
								if isInjectedPanic(err) {
									continue // never applied; op stays pending
								}
								t.Errorf("worker %d pop: %v", w, err)
								return
							}
							if ret == ^uint64(0) {
								rec.Complete(idx, 0, false)
							} else {
								rec.Complete(idx, ret, true)
							}
						}
					}
				}()
			}
			wg.Wait()
			hh := rec.History()
			if !Check(StackModel(), hh) {
				t.Fatalf("chaos stack history of %d ops not linearizable: some push or pop was double- or mis-applied", len(hh))
			}
			st := s.Stats()
			t.Logf("stack: %d ops, crashes=%d restarts=%d ledger-skips=%d",
				len(hh), st.ServerCrashes, st.Restarts, st.LedgerSkips)
			if st.ServerCrashes == 0 || st.LedgerSkips == 0 {
				t.Fatalf("run exercised crashes=%d ledger-skips=%d; the kill threshold missed the workload",
					st.ServerCrashes, st.LedgerSkips)
			}
		})
	}
}

// TestChaosQueueExactlyOnce is the FIFO twin of the stack run: dropped
// or duplicated enqueues under crashes would break FIFO linearizability.
func TestChaosQueueExactlyOnce(t *testing.T) {
	const workers, opsEach = 3, 60
	for _, seed := range chaosSeeds(t) {
		t.Run("seed="+strconv.FormatUint(seed, 10), func(t *testing.T) {
			s, _ := chaosServer(t, seed+2000, workers)
			var queue []uint64
			fidEnq := s.Register(func(a *[core.MaxArgs]uint64) uint64 {
				queue = append(queue, a[0])
				return 0
			})
			fidDeq := s.Register(func(*[core.MaxArgs]uint64) uint64 {
				if len(queue) == 0 {
					return ^uint64(0)
				}
				v := queue[0]
				queue = queue[1:]
				return v
			})

			rec := NewRecorder()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				rng := seed<<24 | uint64(w)
				w := w
				go func() {
					defer wg.Done()
					c := s.MustNewClient()
					defer c.Close()
					for i := 0; i < opsEach; i++ {
						if splitmix(&rng)%2 == 0 {
							v := uint64(w+1)<<32 | uint64(i+1)
							idx := rec.Invoke(w, QueueEnq, v, 0)
							if _, err := c.DelegateRetry(retryPolicy, 5*time.Millisecond, fidEnq, v); err != nil {
								if isInjectedPanic(err) {
									continue // never applied; op stays pending
								}
								t.Errorf("worker %d enq: %v", w, err)
								return
							}
							rec.Complete(idx, 0, false)
						} else {
							idx := rec.Invoke(w, QueueDeq, 0, 0)
							ret, err := c.DelegateRetry(retryPolicy, 5*time.Millisecond, fidDeq)
							if err != nil {
								if isInjectedPanic(err) {
									continue // never applied; op stays pending
								}
								t.Errorf("worker %d deq: %v", w, err)
								return
							}
							if ret == ^uint64(0) {
								rec.Complete(idx, 0, false)
							} else {
								rec.Complete(idx, ret, true)
							}
						}
					}
				}()
			}
			wg.Wait()
			hh := rec.History()
			if !Check(QueueModel(), hh) {
				t.Fatalf("chaos queue history of %d ops not linearizable", len(hh))
			}
			st := s.Stats()
			t.Logf("queue: %d ops, crashes=%d restarts=%d ledger-skips=%d",
				len(hh), st.ServerCrashes, st.Restarts, st.LedgerSkips)
			if st.ServerCrashes == 0 || st.LedgerSkips == 0 {
				t.Fatalf("run exercised crashes=%d ledger-skips=%d; the kill threshold missed the workload",
					st.ServerCrashes, st.LedgerSkips)
			}
		})
	}
}
