package rcu

import "ffwd/internal/backend"

// Backend registration: the read-copy-update comparators. RCU and RLU are
// set-only schemes here, as in the paper's binary-tree benchmark —
// wait-free readers, serialized (RCU) or domain-parallel (RLU) updaters.

func init() {
	backend.Register(backend.Backend{
		Name: "rcu",
		Pkg:  "rcu",
		Doc:  "RCU binary tree: lock-free readers, one updater at a time",
		Sim: map[backend.Structure]backend.SimSpec{
			backend.StructSet: {Family: backend.SimStructure, Method: "RCU"},
		},
		Set: func(backend.Config) (*backend.Instance[backend.Set], error) {
			return backend.Shared[backend.Set](NewTree()), nil
		},
	})
	backend.Register(backend.Backend{
		Name: "rlu",
		Pkg:  "rcu",
		Doc:  "RLU-lite tree: RCU read path, disjoint writer domains in parallel",
		Sim: map[backend.Structure]backend.SimSpec{
			backend.StructSet: {Family: backend.SimStructure, Method: "RLU"},
		},
		Set: func(cfg backend.Config) (*backend.Instance[backend.Set], error) {
			cfg = cfg.WithDefaults()
			return backend.Shared[backend.Set](NewRLUTree(cfg.Shards)), nil
		},
	})
}
