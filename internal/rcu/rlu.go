package rcu

// RLUTree is the RLU-lite comparator: the same wait-free RCU read path,
// but updaters that touch disjoint parts of the key space proceed in
// parallel. Full Read-Log-Update gives writers fine-grained object locks
// plus a per-writer log; under a garbage collector the log's only
// observable effect in this benchmark is *writer parallelism*, which
// RLUTree reproduces by partitioning the key space into independent writer
// domains (each an RCU tree). The result is a linearizable set with
// wait-free readers and disjoint-writer concurrency — the profile the
// paper's RLU line exhibits.
type RLUTree struct {
	parts []*Tree
}

// NewRLUTree returns an RLU-lite tree with the given number of writer
// domains (clamped to at least 1).
func NewRLUTree(domains int) *RLUTree {
	if domains < 1 {
		domains = 1
	}
	t := &RLUTree{parts: make([]*Tree, domains)}
	for i := range t.parts {
		t.parts[i] = NewTree()
	}
	return t
}

// part routes key to its writer domain. Fibonacci hashing decorrelates the
// domain from key order so range-local workloads still spread.
func (t *RLUTree) part(key uint64) *Tree {
	return t.parts[(key*0x9E3779B97F4A7C15)%uint64(len(t.parts))]
}

// Contains reports whether key is in the set; wait-free.
func (t *RLUTree) Contains(key uint64) bool { return t.part(key).Contains(key) }

// Insert adds key; it reports false if key was already present.
func (t *RLUTree) Insert(key uint64) bool { return t.part(key).Insert(key) }

// Remove deletes key; it reports false if key was absent.
func (t *RLUTree) Remove(key uint64) bool { return t.part(key).Remove(key) }

// Len returns the number of keys in the set.
func (t *RLUTree) Len() int {
	n := 0
	for _, p := range t.parts {
		n += p.Len()
	}
	return n
}
