package rcu

import (
	"math/rand"
	"sync"
	"testing"
)

type set interface {
	Contains(uint64) bool
	Insert(uint64) bool
	Remove(uint64) bool
	Len() int
}

func factories() map[string]func() set {
	return map[string]func() set{
		"Tree":    func() set { return NewTree() },
		"RLUTree": func() set { return NewRLUTree(4) },
	}
}

func TestMatchesMapModel(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			model := map[uint64]bool{}
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(300)) + 1
				switch rng.Intn(3) {
				case 0:
					if got, want := s.Insert(k), !model[k]; got != want {
						t.Fatalf("op %d: Insert(%d) = %v want %v", i, k, got, want)
					}
					model[k] = true
				case 1:
					if got, want := s.Remove(k), model[k]; got != want {
						t.Fatalf("op %d: Remove(%d) = %v want %v", i, k, got, want)
					}
					delete(model, k)
				default:
					if got, want := s.Contains(k), model[k]; got != want {
						t.Fatalf("op %d: Contains(%d) = %v want %v", i, k, got, want)
					}
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", s.Len(), len(model))
			}
		})
	}
}

func TestReadersDuringWrites(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			// Stable keys that are never removed: readers must
			// always find them, whatever the writers do around
			// them.
			for k := uint64(10); k <= 1000; k += 10 {
				s.Insert(k)
			}
			stop := make(chan struct{})
			var readers sync.WaitGroup
			for r := 0; r < 4; r++ {
				readers.Add(1)
				go func(seed int64) {
					defer readers.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := (uint64(rng.Intn(100)) + 1) * 10
						if !s.Contains(k) {
							t.Errorf("stable key %d vanished during concurrent updates", k)
							return
						}
					}
				}(int64(r))
			}
			var writers sync.WaitGroup
			for w := 0; w < 4; w++ {
				writers.Add(1)
				go func(seed int64) {
					defer writers.Done()
					rng := rand.New(rand.NewSource(seed + 100))
					for i := 0; i < 20000; i++ {
						// Odd keys only: never collide with
						// the stable multiples of 10.
						k := uint64(rng.Intn(2000))*2 + 1
						if rng.Intn(2) == 0 {
							s.Insert(k)
						} else {
							s.Remove(k)
						}
					}
				}(int64(w))
			}
			writers.Wait()
			close(stop)
			readers.Wait()
		})
	}
}

func TestTwoChildDeleteKeepsSubtrees(t *testing.T) {
	s := NewTree()
	for _, k := range []uint64{50, 25, 75, 12, 37, 62, 87, 30, 40} {
		s.Insert(k)
	}
	if !s.Remove(25) { // two children (12, 37)
		t.Fatal("Remove(25) failed")
	}
	for _, k := range []uint64{12, 30, 37, 40, 50, 62, 75, 87} {
		if !s.Contains(k) {
			t.Fatalf("key %d lost after two-child delete", k)
		}
	}
	if !s.Remove(50) { // root with two children, successor deep
		t.Fatal("Remove(50) failed")
	}
	for _, k := range []uint64{12, 30, 37, 40, 62, 75, 87} {
		if !s.Contains(k) {
			t.Fatalf("key %d lost after root delete", k)
		}
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
}

func TestRLUTreeDomainsClamped(t *testing.T) {
	s := NewRLUTree(0)
	if !s.Insert(1) || !s.Contains(1) {
		t.Fatal("clamped RLUTree broken")
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			s := mk()
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				base := uint64(w*100000 + 1)
				go func() {
					defer wg.Done()
					for i := uint64(0); i < 1000; i++ {
						k := base + i
						if !s.Insert(k) {
							t.Errorf("Insert(%d) failed", k)
							return
						}
						if i%2 == 0 && !s.Remove(k) {
							t.Errorf("Remove(%d) failed", k)
							return
						}
					}
				}()
			}
			wg.Wait()
			if got, want := s.Len(), workers*500; got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
		})
	}
}

func BenchmarkRCUTreeReadHeavy(b *testing.B) {
	for name, mk := range factories() {
		b.Run(name, func(b *testing.B) {
			s := mk()
			for i := uint64(1); i <= 1024; i++ {
				s.Insert(i * 2)
			}
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(1))
				for pb.Next() {
					k := uint64(rng.Intn(2048)) + 1
					switch rng.Intn(20) {
					case 0:
						s.Insert(k)
					case 1:
						s.Remove(k)
					default:
						s.Contains(k)
					}
				}
			})
		})
	}
}
