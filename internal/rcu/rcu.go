// Package rcu implements read-copy-update style concurrent trees: the
// RCU and RLU comparators of the ffwd paper's binary-tree benchmark.
//
// Readers traverse the tree entirely without locks or stores, through
// atomic child pointers. Updaters publish changes with atomic pointer
// stores, copying nodes where an in-place change could expose readers to
// an inconsistent view (the Citrus-style delete). Garbage collection
// subsumes the grace-period machinery of C RCU: a removed node stays valid
// for the readers still holding it and is reclaimed when the last
// reference drops, which is precisely the guarantee quiescent-state
// reclamation provides.
//
// Tree serializes all updaters behind one mutex (classic RCU: "mutual
// exclusion between updaters"). RLUTree allows disjoint updaters to
// proceed in parallel using per-stripe locks, approximating Read-Log-
// Update's fine-grained writer concurrency [Matveev et al., SOSP '15];
// the read path is identical. The log/commit machinery of full RLU is not
// reproduced — under GC, publication via atomic stores gives the same
// reader guarantees — and DESIGN.md records this substitution.
package rcu

import (
	"sync"
	"sync/atomic"
)

// treeNode is an RCU tree node: the key is immutable, children are
// published atomically.
type treeNode struct {
	key         uint64
	left, right atomic.Pointer[treeNode]
}

// Tree is an RCU unbalanced binary search tree: wait-free readers, one
// updater at a time.
type Tree struct {
	root atomic.Pointer[treeNode]
	mu   sync.Mutex
	n    atomic.Int64
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{} }

// Contains reports whether key is in the set; it takes no locks and
// performs no stores.
func (t *Tree) Contains(key uint64) bool {
	n := t.root.Load()
	for n != nil {
		switch {
		case key < n.key:
			n = n.left.Load()
		case key > n.key:
			n = n.right.Load()
		default:
			return true
		}
	}
	return false
}

// Insert adds key; it reports false if key was already present.
func (t *Tree) Insert(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return insertLocked(&t.root, key, &t.n)
}

// Remove deletes key; it reports false if key was absent.
func (t *Tree) Remove(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return removeLocked(&t.root, key, &t.n)
}

// Len returns the number of keys in the set.
func (t *Tree) Len() int { return int(t.n.Load()) }

// insertLocked inserts key under the subtree slot; the caller holds the
// updater lock covering it.
func insertLocked(slot *atomic.Pointer[treeNode], key uint64, n *atomic.Int64) bool {
	for {
		cur := slot.Load()
		if cur == nil {
			slot.Store(&treeNode{key: key})
			n.Add(1)
			return true
		}
		switch {
		case key < cur.key:
			slot = &cur.left
		case key > cur.key:
			slot = &cur.right
		default:
			return false
		}
	}
}

// removeLocked removes key under the subtree slot, using the RCU delete:
// zero- and one-child nodes are spliced out with a single pointer store;
// two-child nodes are replaced by a *copy* of their in-order successor so
// that a concurrent reader never observes the successor key missing from
// both its old and new position.
func removeLocked(slot *atomic.Pointer[treeNode], key uint64, n *atomic.Int64) bool {
	for {
		cur := slot.Load()
		if cur == nil {
			return false
		}
		switch {
		case key < cur.key:
			slot = &cur.left
		case key > cur.key:
			slot = &cur.right
		default:
			deleteNodeRCU(slot, cur)
			n.Add(-1)
			return true
		}
	}
}

func deleteNodeRCU(slot *atomic.Pointer[treeNode], cur *treeNode) {
	left, right := cur.left.Load(), cur.right.Load()
	switch {
	case left == nil:
		slot.Store(right)
	case right == nil:
		slot.Store(left)
	default:
		// Find the in-order successor and its parent slot.
		succSlot := &cur.right
		succ := right
		for {
			l := succ.left.Load()
			if l == nil {
				break
			}
			succSlot = &succ.left
			succ = l
		}
		// Citrus-style: publish a copy of the successor in cur's
		// place first (readers may transiently see succ.key twice,
		// which is harmless for a set), then unlink the original
		// successor.
		repl := &treeNode{key: succ.key}
		repl.left.Store(left)
		if succ == right {
			repl.right.Store(succ.right.Load())
			slot.Store(repl)
			return
		}
		repl.right.Store(right)
		slot.Store(repl)
		succSlot.Store(succ.right.Load())
	}
}
