# Development targets for the ffwd reproduction.

GO ?= go

.PHONY: all build vet test race bench check figures ablations coverage clean

all: build vet test

# The pre-merge gate: vet, full build, race-enabled tests of the hot-path
# packages, and a smoke run of the core microbenches (100 iterations — just
# enough to prove they still execute).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/core/... ./internal/delegated/...
	$(GO) test -run=none -bench=Core -benchtime=100x ./internal/core/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper table/figure plus native benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure as text tables (see also -format csv).
figures:
	$(GO) run ./cmd/ffwdbench -exp all

ablations:
	$(GO) run ./cmd/simexplore

coverage:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
