# Development targets for the ffwd reproduction.

GO ?= go
CHAOS_SEED ?= 1

.PHONY: all build vet test race bench bench-hot bench-smoke bench-compare bench-frontend check chaos replica-chaos proc-chaos linear expiry loadtest fuzz trace figures ablations coverage clean

all: build vet test

# The pre-merge gate: vet, full build, race-enabled tests of the hot-path
# packages, the linearizability suite (single-server and replicated), the
# multi-process kill -9 matrix, the trace pipeline end to end, the serving
# loadtest smoke, and one full-iteration pass of the core microbenches
# (bench-hot).
check: linear expiry replica-chaos proc-chaos trace loadtest
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./internal/core/... ./internal/delegated/...
	$(MAKE) bench-hot

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos runs: the fault-injection suite (delayed sweeps, dropped wakes,
# panicking calls, server kills) under the race detector, deterministic
# from CHAOS_SEED (e.g. `make chaos CHAOS_SEED=7`).
chaos:
	FFWD_CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run Chaos -v ./internal/core/ ./internal/fault/

# Replica chaos: the seeded kill/partition matrix over the replicated
# delegation shard, under the race detector — leader kills mid-flush,
# partition bursts, slow followers, wiped-member revival with snapshot
# catch-up — with every recorded history checked for linearizability.
# Each seed derives its own fault plan (see fault.ReplicaFromSeed);
# override the matrix with `make replica-chaos REPLICA_SEEDS="5"`.
REPLICA_SEEDS ?= 5 9 13
replica-chaos:
	$(GO) test -race -count=1 ./internal/replica/
	@set -e; for s in $(REPLICA_SEEDS); do \
		echo "== replica chaos seed $$s =="; \
		FFWD_CHAOS_SEED=$$s $(GO) test -race -count=1 -run 'Replica' ./internal/apps/; \
	done

# Process-kill chaos: spawn a durable pinned leader plus two follower
# processes from the real ffwdserve binary, SIGKILL them mid-commit-burst
# (randomized per seed, plus deterministic torn-WAL-write and
# mid-snapshot-install crash points), restart from the surviving on-disk
# state, and check every recorded client history for linearizability.
# Failed runs preserve their process logs and WAL/snapshot dirs under
# FFWD_PROC_ARTIFACTS (or the system temp dir) for postmortem.
proc-chaos:
	@set -e; for s in $(REPLICA_SEEDS); do \
		echo "== proc chaos seed $$s =="; \
		FFWD_CHAOS_SEED=$$s $(GO) test -race -count=1 -run TestProc -v ./internal/procchaos/; \
	done

# Linearizability: record real histories of the delegated KV/stack/queue
# under fault injection (kills, dropped wakes, retries) and check them
# against the sequential specs, under the race detector, for two chaos
# seeds. Proves exactly-once effects end to end.
linear:
	FFWD_CHAOS_SEED=3 $(GO) test -race -count=1 ./internal/linear/
	FFWD_CHAOS_SEED=11 $(GO) test -race -count=1 ./internal/linear/

# Server-owned time: the chaos-seeded expiry storm — fault-injected kills
# while workers write short TTLs, jump the logical clock, and read back —
# checked against the sequential KV-with-TTL model under the race
# detector, plus the wheel-vs-sweep A/B (wheel-driven server expiry must
# sustain at least the read throughput of the client-driven SweepExpired
# baseline).
expiry:
	FFWD_CHAOS_SEED=3 $(GO) test -race -count=1 -run 'TestChaosKVTTL|TestRunExpiry' ./internal/linear/ ./internal/runtimebench/
	FFWD_EXPIRY_AB=1 $(GO) test -count=1 -run TestExpiryStormAB -v ./internal/runtimebench/

# Serving-path loadtest smoke: build the real ffwdserve binary, serve
# both protocols, and drive each with the open-loop coordinated-omission-
# safe generator. Fails if either frontend completes zero ops or records
# no tail latency, and exercises the real ffwdload binary's exit-code
# contract.
loadtest:
	$(GO) test -count=1 -run 'TestLoad' -v ./cmd/ffwdload/

# Frontend A/B benchmark: a same-window closed-loop comparison of the
# binary dataplane against the text frontend at equal connection count.
# Regenerates BENCH_frontend.json and fails if the binary frontend is
# under 2x the text frontend's throughput.
bench-frontend:
	FFWD_LOADTEST_AB=1 $(GO) test -count=1 -run TestFrontendAB -v ./cmd/ffwdload/

# Fuzz the two text/binary protocol surfaces for a bounded while: the
# text command dispatcher and the binary frame decoder (Split +
# DecodeRequest/DecodeResponse). Not part of check; run before protocol
# changes.
FUZZ_TIME ?= 15s
fuzz:
	$(GO) test -run=none -fuzz FuzzDispatch -fuzztime $(FUZZ_TIME) ./cmd/ffwdserve/
	$(GO) test -run=none -fuzz FuzzWireDecode -fuzztime $(FUZZ_TIME) ./internal/wireproto/

# Observability smoke: capture a delegation lifecycle trace from a real
# traced workload under the race detector, then run ffwdtrace over it and
# require a non-empty phase breakdown (ffwdtrace exits nonzero when zero
# operations attribute). Proves capture → Chrome JSON → attribution end
# to end.
TRACE_OUT ?= /tmp/ffwd-trace.json
trace:
	FFWD_TRACE_OUT=$(TRACE_OUT) $(GO) test -race -count=1 -run TestTraceCaptureSmoke ./internal/core/
	$(GO) run ./cmd/ffwdtrace $(TRACE_OUT)

# One testing.B benchmark per paper table/figure plus native benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benches only: one full-iteration pass of the internal/core
# microbenches (~30 s). Fast enough for every pre-merge check; use
# bench-compare for a statistically honest baseline diff.
bench-hot:
	$(GO) test -run=none -bench=Core -benchtime=200000x ./internal/core/

# Best-of-N regression gate: run the Core benches BENCH_RUNS times, take
# per-benchmark minima, and diff against the committed BENCH_core.json.
# Exits nonzero past the noise envelope (default +25%); refresh the
# baseline with `go run ./cmd/benchdiff -update -history <era>`.
BENCH_RUNS ?= 7
bench-compare:
	$(GO) run ./cmd/benchdiff -runs $(BENCH_RUNS)

# Grid smoke: run every registered backend through every structure it
# supports on the runtime harness — a few milliseconds per cell, race
# detector on — then one ffwdbench pass through the runtime layer's JSON
# output. Proves every registry cell still constructs, progresses, and
# reports sane latencies.
bench-smoke:
	$(GO) test -race -count=1 -run 'TestRunSmoke|TestSimGrid' -v ./internal/runtimebench/
	$(GO) run ./cmd/ffwdbench -layer runtime -goroutines 2 -measure 5ms -format json > /dev/null

# Regenerate every table and figure as text tables (see also -format csv).
figures:
	$(GO) run ./cmd/ffwdbench -exp all

ablations:
	$(GO) run ./cmd/simexplore

coverage:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
