// Package ffwd's root benchmark harness: one testing.B benchmark per table
// and figure of the paper, regenerating the experiment's rows each
// iteration from the simulated Broadwell machine (select other machines
// with ffwdbench), plus native benchmarks that exercise the real runtime
// delegation stack against its lock baselines.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one figure's data:
//
//	go test -bench=BenchmarkFig9 -v
package ffwd

import (
	"fmt"
	"sync"
	"testing"

	"ffwd/internal/backend"
	_ "ffwd/internal/backend/all"
	"ffwd/internal/bench"
	"ffwd/internal/core"
	"ffwd/internal/locks"
	"ffwd/internal/simarch"
	"ffwd/internal/simsync"
	"ffwd/internal/workload"
)

// benchOpts keeps per-iteration cost bounded; ffwdbench uses the longer
// default horizon.
func benchOpts() bench.Options { return bench.Options{DurationNS: 3e5, Seed: 1} }

// runExperiment is the shared body of every figure benchmark: regenerate
// the figure b.N times and report one derived headline metric so regressions
// in the models are visible in benchstat output.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = bench.Run(id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the first series' last point as the headline metric
	// (metric units must be whitespace-free).
	if len(fig.Series) > 0 && len(fig.Series[0].Points) > 0 {
		s := fig.Series[0]
		b.ReportMetric(s.Points[len(s.Points)-1].Y, "headline_y")
	}
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { runExperiment(b, "fig18") }

// --- Native (real concurrency) benchmarks -------------------------------
//
// These exercise the runtime-layer implementations: absolute numbers on a
// single-core host do not reproduce the paper's contention effects, but
// the same binaries on a multi-socket machine do.

// BenchmarkNativeFetchAdd is the fetch-and-add micro-benchmark (fig8/fig9
// family) on the real stack: ffwd delegation vs a mutex vs an MCS lock.
func BenchmarkNativeFetchAdd(b *testing.B) {
	b.Run("FFWD", func(b *testing.B) {
		srv := core.NewServer(core.Config{MaxClients: 64})
		var counter uint64
		inc := srv.Register(func(*[core.MaxArgs]uint64) uint64 {
			counter++
			return counter
		})
		if err := srv.Start(); err != nil {
			b.Fatal(err)
		}
		defer srv.Stop()
		b.RunParallel(func(pb *testing.PB) {
			c := srv.MustNewClient()
			for pb.Next() {
				c.Delegate(inc)
			}
		})
	})
	b.Run("MUTEX", func(b *testing.B) {
		var mu sync.Mutex
		var counter uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				mu.Lock()
				counter++
				mu.Unlock()
			}
		})
	})
	b.Run("MCS", func(b *testing.B) {
		var l locks.MCS
		var counter uint64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				l.Lock()
				counter++
				l.Unlock()
			}
		})
	})
}

// BenchmarkNativeDelegationArity measures the real demarshalling cost per
// argument count (the paper's odel).
func BenchmarkNativeDelegationArity(b *testing.B) {
	srv := core.NewServer(core.Config{})
	sink := uint64(0)
	fid := srv.Register(func(a *[core.MaxArgs]uint64) uint64 {
		sink += a[0] + a[5]
		return sink
	})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Stop()
	c := srv.MustNewClient()
	for argc := 0; argc <= core.MaxArgs; argc += 2 {
		args := make([]uint64, argc)
		b.Run(fmt.Sprintf("args=%d", argc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Delegate(fid, args...)
			}
		})
	}
}

// BenchmarkAblationSim runs the simulated design-choice ablations that
// DESIGN.md calls out (cmd/simexplore prints the same data interactively):
// each sub-benchmark's headline metric is the ablated configuration's
// throughput in Mops.
func BenchmarkAblationSim(b *testing.B) {
	m := simarch.Broadwell
	cs := simsync.EmptyLoop(m, 1)
	base := simsync.DelegSimConfig{
		Machine: m, Method: simsync.FFWD, Clients: 120, Servers: 1,
		DelayPauses: 25, CS: cs, DurationNS: 3e5, Seed: 1,
	}
	run := func(name string, mutate func(*simsync.DelegSimConfig)) {
		b.Run(name, func(b *testing.B) {
			var r simsync.Result
			for i := 0; i < b.N; i++ {
				cfg := base
				mutate(&cfg)
				r = simsync.SimulateDelegation(cfg)
			}
			b.ReportMetric(r.Mops, "Mops")
		})
	}
	run("baseline", func(*simsync.DelegSimConfig) {})
	run("write-through", func(c *simsync.DelegSimConfig) { c.WriteThrough = true })
	run("server-lock", func(c *simsync.DelegSimConfig) { c.ServerLockNS = 20 })
	run("private-responses", func(c *simsync.DelegSimConfig) { c.PrivateResponses = true })
	run("rcl-protocol", func(c *simsync.DelegSimConfig) { c.Method = simsync.RCL })
	run("numa-oblivious", func(c *simsync.DelegSimConfig) { c.RemoteRequestLines = true })
}

// BenchmarkAblationStoreBufferDepth sweeps the modelled store-buffer depth
// against a dependent-miss-store workload (the fig15 mechanism).
func BenchmarkAblationStoreBufferDepth(b *testing.B) {
	m := simarch.Broadwell
	for _, depth := range []int{1, 4, 16, 42} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var r simsync.Result
			for i := 0; i < b.N; i++ {
				mm := m
				mm.StoreBufferEntries = depth
				r = simsync.SimulateDelegation(simsync.DelegSimConfig{
					Machine: mm, Method: simsync.FFWD, Clients: 120, Servers: 1,
					DelayPauses: 25, DurationNS: 3e5, Seed: 1,
					CS: simsync.CS{BaseNS: 25, ServerMissStores: 2,
						MissStoreLatNS: m.RemoteLLCNS, MissStoreWindow: depth},
				})
			}
			b.ReportMetric(r.Mops, "Mops")
			b.ReportMetric(r.StallPct, "stall%")
		})
	}
}

// BenchmarkNativeAblations runs the real server's design-choice ablations:
// buffered vs write-through responses, shared vs private response lines,
// with vs without a server-side lock.
func BenchmarkNativeAblations(b *testing.B) {
	run := func(name string, cfg core.Config) {
		b.Run(name, func(b *testing.B) {
			cfg.MaxClients = 32
			srv := core.NewServer(cfg)
			var counter uint64
			inc := srv.Register(func(*[core.MaxArgs]uint64) uint64 {
				counter++
				return counter
			})
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer srv.Stop()
			b.RunParallel(func(pb *testing.PB) {
				c := srv.MustNewClient()
				for pb.Next() {
					c.Delegate(inc)
				}
			})
		})
	}
	run("baseline", core.Config{})
	run("write-through", core.Config{WriteThrough: true})
	run("private-responses", core.Config{GroupSizeOverride: 1})
	run("server-lock", core.Config{ServerLock: &sync.Mutex{}})
}

// BenchmarkRuntimeGrid drives every registered backend through the shared
// registry — the same descriptors the runtimebench harness sweeps — so
// benchstat can compare synchronization schemes on identical op loops.
func BenchmarkRuntimeGrid(b *testing.B) {
	for _, bk := range backend.ByStructure(backend.StructCounter) {
		bk := bk
		b.Run("counter/"+bk.Name, func(b *testing.B) {
			inst, err := bk.Counter(backend.Config{Goroutines: 64})
			if err != nil {
				b.Fatal(err)
			}
			if inst.Close != nil {
				defer inst.Close()
			}
			var mu sync.Mutex // NewHandle is main-goroutine API; serialize it
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				h := inst.NewHandle()
				mu.Unlock()
				for pb.Next() {
					h.Add(1)
				}
			})
		})
	}
	for _, bk := range backend.ByStructure(backend.StructSet) {
		bk := bk
		b.Run("set/"+bk.Name, func(b *testing.B) {
			inst, err := bk.Set(backend.Config{Goroutines: 64, KeySpace: 1024})
			if err != nil {
				b.Fatal(err)
			}
			if inst.Close != nil {
				defer inst.Close()
			}
			var mu sync.Mutex
			var seed int64
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				h := inst.NewHandle()
				seed++
				keys := workload.NewUniform(seed, 1024)
				mix := workload.NewMix(seed, 0.3)
				mu.Unlock()
				for pb.Next() {
					k := keys.Next()
					switch mix.Next() {
					case workload.OpContains:
						h.Contains(k)
					case workload.OpInsert:
						h.Insert(k)
					default:
						h.Remove(k)
					}
				}
			})
		})
	}
}
