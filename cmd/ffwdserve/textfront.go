package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the text-protocol frontend: goroutine-per-connection,
// newline-framed commands, one reply line per command. It shares the
// backend, admission, and drain semantics with the binary frontend
// (binaryfront.go); only the wire format and concurrency shape differ.

// maxLine bounds one command line (bytes, newline included). Longer
// lines are drained and answered with an ERROR instead of truncated or
// silently dropped.
const maxLine = 4096

// errLineTooLong reports a command line over maxLine; the offending line
// has been consumed, so the connection can keep serving.
var errLineTooLong = errors.New("line too long")

// serveStats aggregates connection-level counters across the frontend;
// all fields are atomics so serving goroutines update them lock-free.
type serveStats struct {
	accepted     atomic.Uint64 // connections accepted off the listener
	rejected     atomic.Uint64 // closed at admission: over -max-conns
	active       atomic.Int64  // currently serving
	readTimeouts atomic.Uint64 // connections dropped by the idle deadline
	longLines    atomic.Uint64 // over-maxLine command lines rejected
}

// textFrontend is the connection-facing half of the text protocol: it
// owns admission control, per-connection deadlines, the bounded-line
// protocol loop, and the in-flight connection set the graceful drain
// closes.
type textFrontend struct {
	b            backend
	maxConns     int           // admission cap (0 = unlimited)
	readTimeout  time.Duration // per-command idle bound (0 = none)
	writeTimeout time.Duration // per-flush bound (0 = none)
	stats        serveStats

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

func newTextFrontend(b backend) *textFrontend {
	return &textFrontend{b: b, conns: make(map[net.Conn]struct{})}
}

// acceptLoop accepts until the listener closes, applying the -max-conns
// admission check before a connection gets a serving goroutine.
func (fe *textFrontend) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fe.stats.accepted.Add(1)
		if fe.maxConns > 0 && fe.stats.active.Load() >= int64(fe.maxConns) {
			fe.stats.rejected.Add(1)
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			fmt.Fprintf(conn, "BUSY max connections\n")
			conn.Close()
			continue
		}
		fe.stats.active.Add(1)
		fe.mu.Lock()
		fe.conns[conn] = struct{}{}
		fe.mu.Unlock()
		fe.wg.Add(1)
		go func() {
			defer fe.wg.Done()
			defer fe.stats.active.Add(-1)
			fe.serve(conn)
			fe.mu.Lock()
			delete(fe.conns, conn)
			fe.mu.Unlock()
		}()
	}
}

// drain waits up to timeout for in-flight connections to finish, then
// force-closes the stragglers; it returns how many it had to force.
func (fe *textFrontend) drain(timeout time.Duration) int {
	done := make(chan struct{})
	go func() { fe.wg.Wait(); close(done) }()
	select {
	case <-done:
		return 0
	case <-time.After(timeout):
	}
	fe.mu.Lock()
	n := len(fe.conns)
	for c := range fe.conns {
		c.Close()
	}
	fe.mu.Unlock()
	<-done
	return n
}

// serve runs the protocol loop for one connection: bounded line reads
// under the idle deadline, write-combined replies under the write
// deadline.
func (fe *textFrontend) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, maxLine)
	w := bufio.NewWriter(conn)
	for {
		if fe.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(fe.readTimeout))
		}
		line, err := readLine(r)
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				fe.stats.longLines.Add(1)
				if !fe.reply(conn, r, w, "ERROR line too long") {
					return
				}
				continue
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// A quit-less idle client: tell it why (best effort)
				// and drop the connection rather than leak it.
				fe.stats.readTimeouts.Add(1)
				fe.reply(conn, r, w, "ERROR idle timeout")
			}
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			// Flush replies to commands pipelined ahead of the quit.
			w.Flush()
			return
		}
		if !fe.reply(conn, r, w, fe.b.handle(line)) {
			return
		}
	}
}

// readLine reads one newline-terminated line of at most maxLine bytes
// (the reader's buffer size). An overlong line is consumed through its
// newline and reported as errLineTooLong, so the protocol loop can
// answer with an ERROR and keep the connection — where a Scanner would
// kill it silently.
func readLine(r *bufio.Reader) (string, error) {
	s, err := r.ReadSlice('\n')
	switch {
	case err == nil:
		return string(s), nil
	case errors.Is(err, bufio.ErrBufferFull):
		for {
			_, err = r.ReadSlice('\n')
			if err == nil {
				return "", errLineTooLong
			}
			if !errors.Is(err, bufio.ErrBufferFull) {
				return "", err
			}
		}
	case len(s) > 0 && errors.Is(err, io.EOF):
		// A final line without a newline is still a command.
		return string(s), nil
	default:
		return "", err
	}
}

// reply buffers one response line under the write deadline; false means
// the connection is gone. The flush is write-combined: when the read
// buffer already holds another complete command — a pipelining client —
// the reply rides along with the next one instead of paying its own
// write syscall. The skip is safe against trickling clients because it
// only happens when a full newline-terminated command is already
// buffered, which guarantees another reply (and flush check) follows.
func (fe *textFrontend) reply(conn net.Conn, r *bufio.Reader, w *bufio.Writer, resp string) bool {
	if fe.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(fe.writeTimeout))
	}
	if _, err := fmt.Fprintln(w, resp); err != nil {
		return false
	}
	if cmdBuffered(r) {
		return true
	}
	return w.Flush() == nil
}

// cmdBuffered reports whether r already holds a complete command line.
func cmdBuffered(r *bufio.Reader) bool {
	n := r.Buffered()
	if n == 0 {
		return false
	}
	peek, _ := r.Peek(n)
	return bytes.IndexByte(peek, '\n') >= 0
}
