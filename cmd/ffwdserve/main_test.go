package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ffwd/internal/apps"
)

func newFFWDBackend(t *testing.T, capacity, clients int) *ffwdBackend {
	t.Helper()
	const depth = 2
	d := apps.NewDelegatedKV(capacity, clients*(1+depth))
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	fb, err := newFFWDBackendPool(d, clients, depth)
	if err != nil {
		t.Fatal(err)
	}
	return fb
}

func TestParse(t *testing.T) {
	op, args, err := parse("set 1 42")
	if err != nil || op != "set" || len(args) != 2 || args[0] != 1 || args[1] != 42 {
		t.Fatalf("parse = %q %v %v", op, args, err)
	}
	if _, _, err := parse(""); err == nil {
		t.Fatal("empty command parsed")
	}
	if _, _, err := parse("get abc"); err == nil {
		t.Fatal("non-numeric arg parsed")
	}
	op, _, err = parse("GET 1")
	if err != nil || op != "get" {
		t.Fatalf("case-insensitive op broken: %q %v", op, err)
	}
}

func TestDispatchProtocol(t *testing.T) {
	for _, tc := range []struct {
		name string
		b    backend
	}{
		{"ffwd", newFFWDBackend(t, 128, 4)},
		{"mutex", &mutexBackend{kv: apps.NewLockedKV(128, func() sync.Locker { return &sync.Mutex{} })}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			steps := []struct{ in, want string }{
				{"get 1", "NOT_FOUND"},
				{"set 1 42", "STORED"},
				{"get 1", "VALUE 42"},
				{"set 1 43", "STORED"},
				{"get 1", "VALUE 43"},
				{"len", "LEN 1"},
				{"del 1", "DELETED"},
				{"del 1", "NOT_FOUND"},
				{"get 1", "NOT_FOUND"},
				{"set 2 18446744073709551615", "ERROR value reserved"},
				{"bogus", usageMsg},
				{"set x y", "ERROR bad number \"x\""},
				{"get 1 2", usageMsg},
				{"set 10 100", "STORED"},
				{"set 12 120", "STORED"},
				{"mget 10 11 12", "VALUES 100 - 120"},
				{"mget", usageMsg},
				{"setx 20 200 1000000", "STORED"},
				{"setx 21 18446744073709551615 5", "ERROR value reserved"},
				{"get 20", "VALUE 200"},
				{"touch 20 2000000", "TOUCHED"},
				{"touch 21 5", "NOT_FOUND"},
				{"setx 20 200", usageMsg},
				{"touch 20", usageMsg},
				{"stats", "STATS hits=6 misses=4 evictions=0 expired=0"},
			}
			for _, s := range steps {
				if got := tc.b.handle(s.in); got != s.want {
					t.Fatalf("handle(%q) = %q, want %q", s.in, got, s.want)
				}
			}
		})
	}
}

// Regression: the mutex backend's reads must carry a tick too. With a
// tick source wired, a setx'd key has to stop reading back once its TTL
// elapses even when no further TTL-bearing command runs — the clock used
// to advance only on setx/touch, so pure-read workloads never expired
// anything.
func TestMutexBackendReadExpiry(t *testing.T) {
	var now atomic.Uint64
	b := &mutexBackend{
		kv:   apps.NewLockedKV(128, func() sync.Locker { return &sync.Mutex{} }),
		tick: now.Load,
	}
	if got := b.handle("setx 1 10 5"); got != "STORED" {
		t.Fatalf("setx = %q", got)
	}
	if got := b.handle("get 1"); got != "VALUE 10" {
		t.Fatalf("get before expiry = %q", got)
	}
	now.Store(6)
	// Pure reads from here on: only get/mget may advance the clock.
	if got := b.handle("get 1"); got != "NOT_FOUND" {
		t.Fatalf("get after expiry = %q", got)
	}
	if got := b.handle("mget 1 2"); got != "VALUES - -" {
		t.Fatalf("mget after expiry = %q", got)
	}
	if got := b.handle("stats"); !strings.Contains(got, "expired=1") {
		t.Fatalf("stats = %q, want expired=1", got)
	}
}

// listen starts fe accepting on an ephemeral port and returns its
// address.
func listen(t *testing.T, fe *textFrontend) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go fe.acceptLoop(ln)
	return ln.Addr().String()
}

func TestServeOverTCP(t *testing.T) {
	b := newFFWDBackend(t, 1024, 8)
	addr := listen(t, newTextFrontend(b))

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(cmd string) string {
		if _, err := fmt.Fprintln(conn, cmd); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return line[:len(line)-1]
	}
	if got := send("set 7 700"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	if got := send("get 7"); got != "VALUE 700" {
		t.Fatalf("get: %q", got)
	}
	if got := send("del 7"); got != "DELETED" {
		t.Fatalf("del: %q", got)
	}
	fmt.Fprintln(conn, "quit")
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after quit")
	}
}

func TestServeConcurrentConnections(t *testing.T) {
	b := newFFWDBackend(t, 1<<12, 16)
	addr := listen(t, newTextFrontend(b))

	const conns, opsEach = 8, 200
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		base := uint64(c * 1000)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := uint64(0); i < opsEach; i++ {
				fmt.Fprintf(conn, "set %d %d\n", base+i, base+i+1)
				if line, _ := r.ReadString('\n'); line != "STORED\n" {
					t.Errorf("set: %q", line)
					return
				}
				fmt.Fprintf(conn, "get %d\n", base+i)
				want := fmt.Sprintf("VALUE %d\n", base+i+1)
				if line, _ := r.ReadString('\n'); line != want {
					t.Errorf("get: %q want %q", line, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
