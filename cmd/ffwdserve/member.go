package main

import (
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"ffwd/internal/apps"
	"ffwd/internal/replica"
	"ffwd/internal/replog"
	"ffwd/internal/reptrans"
)

// runReplicaMember is ffwdserve's follower mode: no client protocol, no
// delegation server — just a durable replication endpoint. It recovers
// its state from -data-dir (torn WAL tails truncated, snapshot
// restored), serves the leader's session over -replica-member's listen
// address, fsyncs every accepted append before acking, and exits on
// SIGINT/SIGTERM. The process-kill chaos harness SIGKILLs it at will;
// FFWD_CRASH_POINT arms deterministic self-kills inside WAL writes and
// snapshot installs for the torn-write legs.
func runReplicaMember(listenAddr, dataDir, fsyncPol string, capacity int) {
	if dataDir == "" {
		log.Fatal("ffwdserve: -replica-member requires -data-dir")
	}
	pol, err := replog.ParseSyncPolicy(fsyncPol)
	if err != nil {
		log.Fatal(err)
	}
	crash, err := replog.CrashFromEnv()
	if err != nil {
		log.Fatal(err)
	}
	st, rec, err := replog.Open(dataDir, replog.Options{Sync: pol, Crash: crash})
	if err != nil {
		log.Fatalf("ffwdserve: open member store: %v", err)
	}
	m := replica.NewMember(apps.NewKVMachine(capacity), 0, st)
	if err := m.Recover(rec.Snap, rec.Entries); err != nil {
		log.Fatalf("ffwdserve: recover member state: %v", err)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		log.Fatal(err)
	}
	srv := reptrans.NewServer(ln, reptrans.ServerConfig{Member: m, Store: st, Logf: log.Printf})
	// The harness parses this line for the bound port, so it must carry
	// the resolved address even when listenAddr asked for :0.
	log.Printf("ffwdserve: replica member listening on %s (dir=%s fsync=%s boots=%d log=%d torn=%d/%dB)",
		srv.Addr(), dataDir, fsyncPol, rec.Meta.Boots, m.LastIndex(), rec.TornRecords, rec.TornBytes)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	last, commit, applied := srv.MemberState()
	sst := srv.Stats()
	log.Printf("ffwdserve: replica member %v: log=%d commit=%d applied=%d sessions=%d appends=%d nacks=%d snap_installs=%d",
		sig, last, commit, applied, sst.Sessions, sst.Appends, sst.AppendNacks, sst.SnapInstalls)
	srv.Close()
	if err := st.Close(); err != nil {
		log.Printf("ffwdserve: close member store: %v", err)
	}
	log.Print("ffwdserve: replica member shutdown complete")
}
