package main

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ffwd/internal/apps"
)

// This file is the protocol-independent core of ffwdserve: the backend
// abstraction over the two store configurations, the pooled delegation
// handles, and the text command dispatcher both the text frontend and
// the parity tests share. The wire frontends (textfront.go,
// binaryfront.go) sit on top of it.

// mgetMax bounds the number of keys per mget so one command line cannot
// monopolize the pooled pipeline client. It equals wireproto.MGetMax so
// the two frontends admit identical batches (pinned by test).
const mgetMax = 64

// backend abstracts the two store configurations.
type backend interface {
	handle(line string) string
}

// ffwdConn is one pooled delegation handle: a synchronous channel for
// single-key commands plus a pipelined window for mget.
type ffwdConn struct {
	kv   *apps.KVClient
	pipe *apps.KVPipeClient
	// mget scratch, reused so a command allocates only the response
	// string.
	vals  []uint64
	found []bool
}

type ffwdBackend struct {
	d *apps.DelegatedKV
	// Delegation client slots are a bounded resource, so they live in a
	// fixed channel-based pool: a command borrows one and returns it.
	// (sync.Pool is wrong here — it may drop items, leaking slots.)
	clients chan *ffwdConn

	// shedAfter bounds how long a command waits for a pooled handle when
	// the pool is saturated before being answered BUSY (0 = wait
	// forever). sheds counts the commands shed that way.
	shedAfter time.Duration
	sheds     atomic.Uint64

	// defaultTTL, when nonzero, is applied to plain set commands (ticks
	// from the server clock at apply time) — the -default-ttl flag.
	defaultTTL uint64
}

// newFFWDBackendPool preallocates every client slot: n pooled handles,
// each owning one synchronous channel and a pipeline of depth pipeDepth.
func newFFWDBackendPool(d *apps.DelegatedKV, n, pipeDepth int) (*ffwdBackend, error) {
	fb := &ffwdBackend{d: d, clients: make(chan *ffwdConn, n)}
	for i := 0; i < n; i++ {
		kv, err := d.NewClient()
		if err != nil {
			return nil, err
		}
		pipe, err := d.NewPipelinedClient(pipeDepth)
		if err != nil {
			return nil, err
		}
		fb.clients <- &ffwdConn{
			kv:    kv,
			pipe:  pipe,
			vals:  make([]uint64, mgetMax),
			found: make([]bool, mgetMax),
		}
	}
	return fb, nil
}

type mutexBackend struct {
	kv *apps.LockedKV
	// tick is the logical clock source for TTL commands; nil freezes the
	// clock (TTL'd entries then only die by capacity eviction).
	tick func() uint64
	// defaultTTL mirrors ffwdBackend.defaultTTL for plain sets.
	defaultTTL uint64
}

func (f *ffwdBackend) handle(line string) string {
	var c *ffwdConn
	if f.shedAfter <= 0 {
		c = <-f.clients
	} else {
		select {
		case c = <-f.clients:
		default:
			// Saturated pool: wait a bounded while for a handle, then
			// shed the command rather than queue without limit.
			t := time.NewTimer(f.shedAfter)
			select {
			case c = <-f.clients:
				t.Stop()
			case <-t.C:
				f.sheds.Add(1)
				return "BUSY delegation pool saturated"
			}
		}
	}
	defer func() { f.clients <- c }()
	return dispatchStats(line,
		func(k uint64) (uint64, bool) { return c.kv.Get(k) },
		func(k, v uint64) {
			if f.defaultTTL > 0 {
				c.kv.SetTTLNow(k, v, f.defaultTTL)
			} else {
				c.kv.Set(k, v)
			}
		},
		func(k uint64) bool { return c.kv.Delete(k) },
		func() int { return c.kv.Len() },
		c.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			c.pipe.MultiGet(keys, c.vals, c.found)
			return c.vals[:len(keys)], c.found[:len(keys)]
		},
		func(k, v, ttl uint64) { c.kv.SetTTLNow(k, v, ttl) },
		func(k, ttl uint64) bool { return c.kv.Touch(k, ttl) },
	)
}

func (m *mutexBackend) handle(line string) string {
	// The lock-based store has no owning goroutine to advance its clock,
	// so the command path does it: every TTL-bearing command samples the
	// tick source and sweeps due entries inline (the client-driven expiry
	// model the server-owned wheel replaces on the ffwd backend).
	tickNow := func() uint64 {
		if m.tick == nil {
			return m.kv.Clock()
		}
		return m.kv.AdvanceClock(m.tick())
	}
	// Reads carry a tick too: with no owning goroutine, a pure-read
	// workload would otherwise never advance the clock and TTL'd entries
	// would read back forever. GetAt advances+reads under one lock
	// acquisition.
	get := m.kv.Get
	if m.tick != nil {
		get = func(k uint64) (uint64, bool) { return m.kv.GetAt(k, m.tick()) }
	}
	set := m.kv.Set
	if m.defaultTTL > 0 {
		set = func(k, v uint64) { m.kv.SetTTL(k, v, tickNow(), m.defaultTTL) }
	}
	return dispatchStats(line, get, set, m.kv.Delete, m.kv.Len, m.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			// No pipelining behind a lock: the multi-get is just a loop.
			vals := make([]uint64, len(keys))
			found := make([]bool, len(keys))
			for i, k := range keys {
				vals[i], found[i] = get(k)
			}
			return vals, found
		},
		func(k, v, ttl uint64) { m.kv.SetTTL(k, v, tickNow(), ttl) },
		func(k, ttl uint64) bool { return m.kv.Touch(k, tickNow(), ttl) })
}

// parse splits a command into op and numeric arguments.
func parse(line string) (op string, args []uint64, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("empty command")
	}
	op = strings.ToLower(fields[0])
	for _, f := range fields[1:] {
		v, perr := strconv.ParseUint(f, 10, 64)
		if perr != nil {
			return "", nil, fmt.Errorf("bad number %q", f)
		}
		args = append(args, v)
	}
	return op, args, nil
}

const usageMsg = "ERROR usage: get k | mget k... | set k v | setx k v ttl | touch k ttl | del k | len | stats | quit"

// statsLine formats the stats reply. Both frontends answer the stats
// command through this one formatter so their fields can never drift
// (pinned by the parity test).
func statsLine(h, m, e, exp uint64) string {
	return fmt.Sprintf("STATS hits=%d misses=%d evictions=%d expired=%d", h, m, e, exp)
}

func dispatchStats(line string, get func(uint64) (uint64, bool), set func(uint64, uint64),
	del func(uint64) bool, length func() int, stats func() (h, m, e, exp uint64),
	mget func([]uint64) ([]uint64, []bool),
	setTTL func(k, v, ttl uint64), touch func(k, ttl uint64) bool) string {
	op, args, err := parse(line)
	if err != nil {
		return "ERROR " + err.Error()
	}
	switch {
	case op == "get" && len(args) == 1:
		if v, ok := get(args[0]); ok {
			return fmt.Sprintf("VALUE %d", v)
		}
		return "NOT_FOUND"
	case op == "mget" && len(args) >= 1 && mget != nil:
		if len(args) > mgetMax {
			return fmt.Sprintf("ERROR mget limited to %d keys", mgetMax)
		}
		vals, found := mget(args)
		var sb strings.Builder
		sb.WriteString("VALUES")
		for i := range args {
			if found[i] {
				fmt.Fprintf(&sb, " %d", vals[i])
			} else {
				sb.WriteString(" -")
			}
		}
		return sb.String()
	case op == "set" && len(args) == 2:
		if args[1] == ^uint64(0) {
			return "ERROR value reserved"
		}
		set(args[0], args[1])
		return "STORED"
	case op == "setx" && len(args) == 3 && setTTL != nil:
		if args[1] == ^uint64(0) {
			return "ERROR value reserved"
		}
		setTTL(args[0], args[1], args[2])
		return "STORED"
	case op == "touch" && len(args) == 2 && touch != nil:
		if touch(args[0], args[1]) {
			return "TOUCHED"
		}
		return "NOT_FOUND"
	case op == "del" && len(args) == 1:
		if del(args[0]) {
			return "DELETED"
		}
		return "NOT_FOUND"
	case op == "len" && len(args) == 0:
		return fmt.Sprintf("LEN %d", length())
	case op == "stats" && len(args) == 0 && stats != nil:
		h, m, e, exp := stats()
		return statsLine(h, m, e, exp)
	default:
		return usageMsg
	}
}
