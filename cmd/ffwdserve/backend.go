package main

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ffwd/internal/apps"
)

// This file is the protocol-independent core of ffwdserve: the backend
// abstraction over the two store configurations, the pooled delegation
// handles, and the text command dispatcher both the text frontend and
// the parity tests share. The wire frontends (textfront.go,
// binaryfront.go) sit on top of it.

// mgetMax bounds the number of keys per mget so one command line cannot
// monopolize the pooled pipeline client. It equals wireproto.MGetMax so
// the two frontends admit identical batches (pinned by test).
const mgetMax = 64

// backend abstracts the two store configurations.
type backend interface {
	handle(line string) string
}

// ffwdConn is one pooled delegation handle: a synchronous channel for
// single-key commands plus a pipelined window for mget.
type ffwdConn struct {
	kv   *apps.KVClient
	pipe *apps.KVPipeClient
	// mget scratch, reused so a command allocates only the response
	// string.
	vals  []uint64
	found []bool
}

type ffwdBackend struct {
	d *apps.DelegatedKV
	// Delegation client slots are a bounded resource, so they live in a
	// fixed channel-based pool: a command borrows one and returns it.
	// (sync.Pool is wrong here — it may drop items, leaking slots.)
	clients chan *ffwdConn

	// shedAfter bounds how long a command waits for a pooled handle when
	// the pool is saturated before being answered BUSY (0 = wait
	// forever). sheds counts the commands shed that way.
	shedAfter time.Duration
	sheds     atomic.Uint64
}

// newFFWDBackendPool preallocates every client slot: n pooled handles,
// each owning one synchronous channel and a pipeline of depth pipeDepth.
func newFFWDBackendPool(d *apps.DelegatedKV, n, pipeDepth int) (*ffwdBackend, error) {
	fb := &ffwdBackend{d: d, clients: make(chan *ffwdConn, n)}
	for i := 0; i < n; i++ {
		kv, err := d.NewClient()
		if err != nil {
			return nil, err
		}
		pipe, err := d.NewPipelinedClient(pipeDepth)
		if err != nil {
			return nil, err
		}
		fb.clients <- &ffwdConn{
			kv:    kv,
			pipe:  pipe,
			vals:  make([]uint64, mgetMax),
			found: make([]bool, mgetMax),
		}
	}
	return fb, nil
}

type mutexBackend struct {
	kv *apps.LockedKV
}

func (f *ffwdBackend) handle(line string) string {
	var c *ffwdConn
	if f.shedAfter <= 0 {
		c = <-f.clients
	} else {
		select {
		case c = <-f.clients:
		default:
			// Saturated pool: wait a bounded while for a handle, then
			// shed the command rather than queue without limit.
			t := time.NewTimer(f.shedAfter)
			select {
			case c = <-f.clients:
				t.Stop()
			case <-t.C:
				f.sheds.Add(1)
				return "BUSY delegation pool saturated"
			}
		}
	}
	defer func() { f.clients <- c }()
	return dispatchStats(line,
		func(k uint64) (uint64, bool) { return c.kv.Get(k) },
		func(k, v uint64) { c.kv.Set(k, v) },
		func(k uint64) bool { return c.kv.Delete(k) },
		func() int { return c.kv.Len() },
		c.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			c.pipe.MultiGet(keys, c.vals, c.found)
			return c.vals[:len(keys)], c.found[:len(keys)]
		},
	)
}

func (m *mutexBackend) handle(line string) string {
	return dispatchStats(line, m.kv.Get, m.kv.Set, m.kv.Delete, m.kv.Len, m.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			// No pipelining behind a lock: the multi-get is just a loop.
			vals := make([]uint64, len(keys))
			found := make([]bool, len(keys))
			for i, k := range keys {
				vals[i], found[i] = m.kv.Get(k)
			}
			return vals, found
		})
}

// parse splits a command into op and numeric arguments.
func parse(line string) (op string, args []uint64, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("empty command")
	}
	op = strings.ToLower(fields[0])
	for _, f := range fields[1:] {
		v, perr := strconv.ParseUint(f, 10, 64)
		if perr != nil {
			return "", nil, fmt.Errorf("bad number %q", f)
		}
		args = append(args, v)
	}
	return op, args, nil
}

const usageMsg = "ERROR usage: get k | mget k... | set k v | del k | len | stats | quit"

// statsLine formats the stats reply. Both frontends answer the stats
// command through this one formatter so their fields can never drift
// (pinned by the parity test).
func statsLine(h, m, e uint64) string {
	return fmt.Sprintf("STATS hits=%d misses=%d evictions=%d", h, m, e)
}

func dispatchStats(line string, get func(uint64) (uint64, bool), set func(uint64, uint64),
	del func(uint64) bool, length func() int, stats func() (h, m, e uint64),
	mget func([]uint64) ([]uint64, []bool)) string {
	op, args, err := parse(line)
	if err != nil {
		return "ERROR " + err.Error()
	}
	switch {
	case op == "get" && len(args) == 1:
		if v, ok := get(args[0]); ok {
			return fmt.Sprintf("VALUE %d", v)
		}
		return "NOT_FOUND"
	case op == "mget" && len(args) >= 1 && mget != nil:
		if len(args) > mgetMax {
			return fmt.Sprintf("ERROR mget limited to %d keys", mgetMax)
		}
		vals, found := mget(args)
		var sb strings.Builder
		sb.WriteString("VALUES")
		for i := range args {
			if found[i] {
				fmt.Fprintf(&sb, " %d", vals[i])
			} else {
				sb.WriteString(" -")
			}
		}
		return sb.String()
	case op == "set" && len(args) == 2:
		if args[1] == ^uint64(0) {
			return "ERROR value reserved"
		}
		set(args[0], args[1])
		return "STORED"
	case op == "del" && len(args) == 1:
		if del(args[0]) {
			return "DELETED"
		}
		return "NOT_FOUND"
	case op == "len" && len(args) == 0:
		return fmt.Sprintf("LEN %d", length())
	case op == "stats" && len(args) == 0 && stats != nil:
		h, m, e := stats()
		return statsLine(h, m, e)
	default:
		return usageMsg
	}
}
