package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// dialText opens a connection with a line-oriented send/recv helper.
func dialText(t *testing.T, addr string) (net.Conn, *bufio.Reader, func(cmd string) string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := bufio.NewReader(conn)
	send := func(cmd string) string {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read after %q: %v", cmd, err)
		}
		return strings.TrimSuffix(line, "\n")
	}
	return conn, r, send
}

// TestProtocolRobustness is the protocol-fuzz table over a live TCP
// connection: every malformed input must produce exactly one ERROR-class
// reply and leave the connection serving — no silent truncation, no
// silent disconnect.
func TestProtocolRobustness(t *testing.T) {
	b := newFFWDBackend(t, 1024, 4)
	addr := listen(t, newTextFrontend(b))
	_, _, send := dialText(t, addr)

	long := "set 1 " + strings.Repeat("9", maxLine+100)
	hugeMget := "mget"
	for i := 0; i <= mgetMax; i++ {
		hugeMget += fmt.Sprintf(" %d", i)
	}
	steps := []struct{ in, want string }{
		{"set 5 50", "STORED"},
		{long, "ERROR line too long"},
		{"get 5", "VALUE 50"}, // the overlong line did not desync the stream
		{hugeMget, fmt.Sprintf("ERROR mget limited to %d keys", mgetMax)},
		{"get 5", "VALUE 50"},
		{"bogus", usageMsg},
		{"get x", "ERROR bad number \"x\""},
		{"set 1", usageMsg},
		{"set 1 2 3", usageMsg},
		{"\x00\x01\x02", usageMsg}, // binary junk is an unknown op, not a crash
		{"get 18446744073709551616", "ERROR bad number \"18446744073709551616\""},
		{"get 5", "VALUE 50"},
	}
	for _, s := range steps {
		if got := send(s.in); got != s.want {
			t.Fatalf("send(%.40q) = %q, want %q", s.in, got, s.want)
		}
	}
}

// TestStalledConnectionHitsReadDeadline is the idle-leak regression: a
// quit-less client that goes silent must be told and dropped by the read
// deadline, not held open forever — and the frontend must keep serving
// fresh connections afterwards.
func TestStalledConnectionHitsReadDeadline(t *testing.T) {
	b := newFFWDBackend(t, 64, 2)
	fe := newTextFrontend(b)
	fe.readTimeout = 50 * time.Millisecond
	addr := listen(t, fe)

	conn, r, send := dialText(t, addr)
	if got := send("set 1 10"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	// Stall. The deadline must fire, explain itself, and close the conn.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSuffix(line, "\n") != "ERROR idle timeout" {
		t.Fatalf("stalled read = %q, %v; want the idle-timeout notice", line, err)
	}
	if _, err := r.ReadString('\n'); err != io.EOF {
		t.Fatalf("connection still open after idle timeout: %v", err)
	}
	if got := fe.stats.readTimeouts.Load(); got != 1 {
		t.Fatalf("readTimeouts = %d, want 1", got)
	}
	// The frontend is unharmed: a fresh connection serves normally.
	_, _, send2 := dialText(t, addr)
	if got := send2("get 1"); got != "VALUE 10" {
		t.Fatalf("fresh connection after timeout: %q", got)
	}
}

// TestMaxConnsAdmission: beyond the cap a new arrival is told BUSY and
// closed without a serving goroutine; when a slot frees, admission
// resumes.
func TestMaxConnsAdmission(t *testing.T) {
	b := newFFWDBackend(t, 64, 2)
	fe := newTextFrontend(b)
	fe.maxConns = 1
	addr := listen(t, fe)

	conn1, _, send := dialText(t, addr)
	if got := send("len"); got != "LEN 0" {
		t.Fatalf("first conn: %q", got)
	}
	// Over the cap: rejected at admission.
	_, r2, _ := dialText(t, addr)
	line, err := r2.ReadString('\n')
	if err != nil || strings.TrimSuffix(line, "\n") != "BUSY max connections" {
		t.Fatalf("over-cap greeting = %q, %v; want BUSY", line, err)
	}
	if _, err := r2.ReadString('\n'); err != io.EOF {
		t.Fatalf("rejected connection not closed: %v", err)
	}
	if got := fe.stats.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// Free the slot and get admitted.
	conn1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for fe.stats.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never freed")
		}
		time.Sleep(time.Millisecond)
	}
	_, _, send3 := dialText(t, addr)
	if got := send3("len"); got != "LEN 0" {
		t.Fatalf("post-release conn: %q", got)
	}
}

// TestPoolSaturationSheds: with every pooled delegation handle borrowed,
// a command must be answered BUSY within the shed timeout instead of
// queueing indefinitely — and served again once a handle returns.
func TestPoolSaturationSheds(t *testing.T) {
	fb := newFFWDBackend(t, 64, 1) // a single pooled handle
	fb.shedAfter = time.Millisecond

	held := <-fb.clients // saturate the pool
	if got := fb.handle("len"); got != "BUSY delegation pool saturated" {
		t.Fatalf("saturated handle = %q, want BUSY", got)
	}
	if got := fb.sheds.Load(); got != 1 {
		t.Fatalf("sheds = %d, want 1", got)
	}
	fb.clients <- held
	if got := fb.handle("len"); got != "LEN 0" {
		t.Fatalf("post-release handle = %q", got)
	}
}

// TestReadLineBounds pins readLine's contract: exact-fit lines pass,
// one-over lines come back as errLineTooLong with the stream intact.
func TestReadLineBounds(t *testing.T) {
	fits := strings.Repeat("a", maxLine-1) + "\n"
	over := strings.Repeat("b", maxLine) + "\n"
	r := bufio.NewReaderSize(strings.NewReader(fits+over+"next\n"), maxLine)
	if line, err := readLine(r); err != nil || line != fits {
		t.Fatalf("exact-fit line: %q, %v", line[:16], err)
	}
	if _, err := readLine(r); err != errLineTooLong {
		t.Fatalf("over line: %v, want errLineTooLong", err)
	}
	if line, err := readLine(r); err != nil || line != "next\n" {
		t.Fatalf("stream desynced after overlong line: %q, %v", line, err)
	}
	// A trailing line without a newline is still a command.
	r = bufio.NewReaderSize(strings.NewReader("quit"), maxLine)
	if line, err := readLine(r); err != nil || line != "quit" {
		t.Fatalf("unterminated final line: %q, %v", line, err)
	}
}
