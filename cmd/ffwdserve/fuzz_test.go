package main

import (
	"strings"
	"sync"
	"testing"

	"ffwd/internal/apps"
)

// FuzzDispatch throws arbitrary command lines at the protocol handler:
// it must never panic and must answer every line with exactly one
// well-formed response.
func FuzzDispatch(f *testing.F) {
	for _, seed := range []string{
		"get 1", "set 1 2", "del 1", "len", "", " ", "get", "set 1",
		"set 1 2 3", "get -1", "set 1 18446744073709551615",
		"GET 007", "sEt 5 5", "del\t9", "quit extra", "get 99999999999999999999",
		"\x00", "set \x01 2", strings.Repeat("a ", 100),
		"mget 1 2 3", "mget", "MGET 4", strings.Repeat("mget 1", 1) + strings.Repeat(" 2", 100),
	} {
		f.Add(seed)
	}
	kv := apps.NewLockedKV(1024, func() sync.Locker { return &sync.Mutex{} })
	b := &mutexBackend{kv: kv}
	f.Fuzz(func(t *testing.T, line string) {
		out := b.handle(line)
		if out == "" {
			t.Fatalf("empty response for %q", line)
		}
		if strings.ContainsRune(out, '\n') {
			t.Fatalf("multi-line response for %q: %q", line, out)
		}
		switch {
		case strings.HasPrefix(out, "VALUE "), strings.HasPrefix(out, "VALUES"),
			out == "NOT_FOUND", out == "STORED", out == "DELETED",
			strings.HasPrefix(out, "LEN "), strings.HasPrefix(out, "STATS "),
			strings.HasPrefix(out, "ERROR "):
		default:
			t.Fatalf("malformed response for %q: %q", line, out)
		}
	})
}
