// Command ffwdserve is a memcached-like TCP key-value server whose store
// is served by a ffwd delegation server — the repository's end-to-end
// demonstration that a real network service can put its entire shared
// state behind delegation.
//
// The server speaks two protocols over TCP, selected with -proto:
//
// Text protocol (-proto text, one command per line):
//
//	set <key> <value>         → STORED
//	setx <key> <value> <ttl>  → STORED            (expires ttl ms after apply)
//	touch <key> <ttl>         → TOUCHED | NOT_FOUND (refresh expiry; 0 clears)
//	get <key>                 → VALUE <v> | NOT_FOUND
//	mget <k1> <k2> ...        → VALUES <v|-> <v|-> ...   (pipelined multi-get)
//	del <key>                 → DELETED | NOT_FOUND
//	len                       → LEN <n>
//	stats                     → STATS hits=<h> misses=<m> evictions=<e> expired=<x>
//	quit                      → closes the connection
//
// TTLs are relative (milliseconds of server time); the server computes
// the absolute deadline when the operation applies, so clients never
// need a synchronized clock. On the ffwd backend expiry is server-owned:
// the delegation server's background hook advances the store clock and
// drains the timer wheel between request sweeps — no client ever scans
// for dead entries. The mutex baseline has no owning goroutine, so its
// TTL commands advance the clock inline (the client-driven model the
// wheel replaces). -default-ttl applies an expiry to plain sets;
// -max-entries caps resident entries (scan-resistant eviction beyond it).
//
// Binary protocol (-proto binary): the length-prefixed frame format of
// internal/wireproto, served by the event-loop dataplane of
// internal/frontend — a fixed pool of epoll readers batch-decodes
// frames into per-shard queues, shard executors pipeline each batch
// through the delegation server, and responses are flushed with one
// write per connection per batch. Requests carry IDs and may complete
// out of order, so a pipelining client is never head-of-line-blocked by
// a slow operation on another shard. -proto both serves text on -addr
// and binary on -binary-addr.
//
// Keys and values are unsigned 64-bit integers (value 2^64-1 is reserved).
// Malformed input never kills a connection silently: unknown commands,
// bad numbers, over-limit mget lines, and lines longer than the 4 KiB
// bound all get an ERROR reply and the connection stays usable. (The
// binary protocol is stricter: a malformed frame loses the framing, so
// it draws a typed error response and a close.)
//
// Both frontends share one protection model under overload and abuse:
//
//   - -max-conns caps concurrent connections; beyond it, new arrivals get
//     "BUSY max connections" (text) or a BUSY frame (binary) and are
//     closed immediately.
//   - -read-timeout bounds how long a connection may sit idle between
//     commands (slowloris/forgotten-client protection).
//   - -write-timeout bounds response flushes so a non-reading peer cannot
//     wedge a serving goroutine.
//   - Saturation sheds instead of queueing without bound: the text path
//     waits up to -shed-timeout for a pooled delegation client, the
//     binary path answers BUSY when a shard queue is full.
//   - -stats-addr exposes the serving counters, the delegation server's
//     stats, and the binary frontend's queue/batch gauges at /metrics
//     and /debug/vars.
//
// The delegation server uses the adaptive idle policy: at zero load it
// parks instead of spinning, so an idle ffwdserve burns no core; the first
// request after an idle period wakes it. Tune with -idle-park-after.
//
// The ffwd backend runs under a core.Supervisor, which restarts the
// delegation server if it ever crashes; the exactly-once ledger makes
// those restarts invisible to clients (no request is applied twice).
// SIGINT/SIGTERM shut down gracefully: accepting stops, in-flight
// connections drain (bounded by -drain-timeout), and the delegation
// server's final stats are logged. -chaos-seed injects a deterministic
// fault mix (see internal/fault) for resilience testing against a live
// server.
//
// -replicas N (N > 1) upgrades the ffwd backend to a raft-style replica
// group (internal/replica): every write is quorum-acknowledged before
// STORED goes back on the wire, and a leader crash promotes a follower
// instead of replaying a restarted server — acknowledged writes survive
// losing the whole leader. `stats` then reports the group's term, commit
// index, and failover counters; /metrics grows ffwd_replica_* gauges;
// and the shutdown report separates in-flight replicated writes from
// leader-local reads. With -chaos-seed, replicated mode injects the
// replication fault mix (leader kills, partition bursts, slow
// followers) instead of the single-server mix. Replicated modes speak
// the text protocol only.
//
// Usage:
//
//	ffwdserve -addr :11211 -capacity 65536 -backend ffwd
//	ffwdserve -proto binary              # binary dataplane on -addr
//	ffwdserve -proto both                # text on -addr, binary on -binary-addr
//	ffwdserve -backend mutex             # global-lock baseline, for comparison
//	ffwdserve -chaos-seed 7              # fault-injected resilience run
//	ffwdserve -replicas 3                # replicated shard with failover
//	ffwdserve -max-conns 128 -read-timeout 30s -stats-addr :8080
package main

import (
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"ffwd/internal/apps"
	"ffwd/internal/core"
	"ffwd/internal/fault"
	"ffwd/internal/frontend"
	"ffwd/internal/obs"
	"ffwd/internal/replica"
	"ffwd/internal/replog"
)

// defaultShards picks the binary frontend's shard count: one executor
// per two cores, bounded so shard queues stay busy enough to batch. On
// a single-core host one shard is right — the win comes from pipelined
// delegation and write combining, not parallel executors.
func defaultShards() int {
	n := runtime.NumCPU() / 2
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		proto     = flag.String("proto", "text", "serving protocol: text, binary, or both (text on -addr, binary on -binary-addr)")
		binAddr   = flag.String("binary-addr", "127.0.0.1:11212", "binary frontend listen address for -proto both")
		shards    = flag.Int("shards", 0, "binary frontend shard executors (0 = one per two cores)")
		queueLen  = flag.Int("frontend-queue", 0, "binary frontend per-shard queue depth (0 = default 1024)")
		batchMax  = flag.Int("frontend-batch", 0, "binary frontend max ops per executor batch (0 = default 64)")
		capacity  = flag.Int("capacity", 1<<16, "store capacity (entries)")
		maxEnts   = flag.Int("max-entries", 0, "cap on resident entries before scan-resistant eviction kicks in (0 = -capacity); overrides -capacity when set")
		defTTLDur = flag.Duration("default-ttl", 0, "expiry applied to plain set commands, rounded to ms ticks (0 = never expire)")
		kind      = flag.String("backend", "ffwd", "ffwd or mutex")
		clients   = flag.Int("clients", 64, "max concurrent delegation clients (ffwd backend, text frontend)")
		replicas  = flag.Int("replicas", 1, "replica group size for the ffwd backend; >1 quorum-replicates writes with failover")
		pipeDepth = flag.Int("pipeline", 8, "pipelined requests in flight per mget (ffwd backend)")
		parkAfter = flag.Int("idle-park-after", 0, "empty sweeps before the idle server parks (0 = default, negative = never park)")
		chaosSeed = flag.Uint64("chaos-seed", 0, "inject a seed-derived fault mix into the delegation server (0 = off; ffwd backend)")
		drainWait = flag.Duration("drain-timeout", 2*time.Second, "grace period for in-flight connections on SIGINT/SIGTERM")
		maxConns  = flag.Int("max-conns", 256, "max concurrent connections per frontend; beyond it new arrivals are rejected BUSY (0 = unlimited)")
		readWait  = flag.Duration("read-timeout", 2*time.Minute, "idle bound between commands before a connection is dropped (0 = none)")
		writeWait = flag.Duration("write-timeout", 10*time.Second, "bound on flushing one response (0 = none)")
		shedWait  = flag.Duration("shed-timeout", 100*time.Millisecond, "how long a command waits for a pooled delegation client before BUSY (ffwd backend; 0 = forever)")
		statsAddr = flag.String("stats-addr", "", "expose serving stats over HTTP at this address: /metrics (Prometheus), /debug/vars (expvar), /debug/pprof, /debug/delegation-trace (empty = off)")
		tracePath = flag.String("trace", "", "capture the delegation lifecycle trace and write it as Chrome trace JSON here on shutdown (ffwd backend)")
		dataDir   = flag.String("data-dir", "", "durable replication: WAL + snapshot directory; selects pinned-leader mode with -peers (or a follower store with -replica-member)")
		fsyncPol  = flag.String("fsync", "always", "WAL sync policy with -data-dir: always, batch, or none")
		peersCSV  = flag.String("peers", "", "comma-separated follower transport addresses (host:port) for durable pinned-leader mode")
		snapEvery = flag.Uint64("snapshot-every", 0, "applied-entry cadence of replica snapshots (0 = library default; replicated modes)")
		memberAt  = flag.String("replica-member", "", "run as a durable replication follower listening on this address (requires -data-dir); serves no client protocol")
	)
	flag.Parse()
	if *maxEnts > 0 {
		*capacity = *maxEnts
	}
	// Server time: one tick = 1ms since process start. The ffwd backend
	// samples this from its background hook; the mutex baseline samples
	// it inline on TTL-bearing commands.
	startAt := time.Now()
	tick := func() uint64 { return uint64(time.Since(startAt) / time.Millisecond) }
	defTTL := uint64(*defTTLDur / time.Millisecond)
	if *defTTLDur > 0 && defTTL == 0 {
		defTTL = 1 // sub-millisecond -default-ttl still expires
	}

	if *memberAt != "" {
		runReplicaMember(*memberAt, *dataDir, *fsyncPol, *capacity)
		return
	}

	needText := *proto == "text" || *proto == "both"
	needBin := *proto == "binary" || *proto == "both"
	if !needText && !needBin {
		log.Fatalf("unknown -proto %q (want text, binary, or both)", *proto)
	}
	replicated := *replicas > 1 || *dataDir != ""
	if needBin && replicated {
		log.Fatal("the binary frontend does not serve replicated modes yet; use -proto text with -replicas/-data-dir")
	}
	if *shards <= 0 {
		*shards = defaultShards()
	}

	var (
		b     backend
		d     *apps.DelegatedKV
		fb    *ffwdBackend
		lkv   *apps.LockedKV
		rkv   *apps.ReplicatedKV
		rb    *repBackend
		sv    *core.Supervisor
		sink  *obs.TraceSink
		execs []frontend.Exec
		// storeStats samples the store's hit/miss/eviction/expiry counters
		// for /metrics and /debug/vars. On the ffwd backend it goes through
		// a dedicated delegation client (scrapes are requests like any
		// other); on mutex it reads under the lock.
		storeStats func() (h, m, e, exp uint64)
	)
	switch *kind {
	case "ffwd":
		if replicated {
			cfg := core.Config{MaxClients: *clients, IdleParkAfter: *parkAfter}
			rcfg := apps.ReplicatedConfig{
				Replicas:      *replicas,
				SnapshotEvery: *snapEvery,
				// The supervisor cadence mirrors the unreplicated path:
				// crash repair within ~5ms, near-zero idle cost.
				Supervisor: core.SupervisorConfig{Interval: 5 * time.Millisecond, KickAfter: 20},
				// Durable pinned-leader mode: -data-dir selects it, -peers
				// names the follower processes, -fsync the WAL policy.
				DataDir: *dataDir,
				Fsync:   *fsyncPol,
			}
			if *peersCSV != "" {
				rcfg.Peers = strings.Split(*peersCSV, ",")
			}
			if *chaosSeed != 0 {
				inj := fault.ReplicaFromSeed(*chaosSeed)
				cfg.Hooks = inj
				rcfg.Hooks = inj
				log.Printf("ffwdserve: replica chaos injection on: %v", inj)
			}
			if *tracePath != "" || *statsAddr != "" {
				sink = obs.NewTraceSink(obs.SinkConfig{Clients: cfg.MaxClients})
				cfg.Trace = sink
			}
			rcfg.Core = cfg
			var rerr error
			rkv, rerr = apps.NewReplicatedKV(*capacity, rcfg)
			if rerr != nil {
				log.Fatal(rerr)
			}
			if err := rkv.Start(); err != nil {
				log.Fatal(err)
			}
			if *dataDir != "" {
				ws := rkv.Store().Stats()
				log.Printf("ffwdserve: durable pinned leader: dir=%s fsync=%s peers=%v term=%d torn=%d/%dB",
					*dataDir, *fsyncPol, rcfg.Peers, rkv.Group().Stats().Term, ws.TornRecords, ws.TornBytes)
			}
			rb = newRepBackendPool(rkv, *clients)
			rb.shedAfter = *shedWait
			b = rb
			break
		}
		if *pipeDepth < 1 {
			*pipeDepth = 1
		}
		// Slot budget: each text pooled handle owns 1 synchronous slot +
		// pipeDepth pipelined slots; each binary shard executor owns its
		// async window + 1 synchronous + pipeDepth pipelined.
		slots := 0
		if needText {
			slots += *clients * (1 + *pipeDepth)
		}
		if needBin {
			slots += ffwdExecSlots(*shards, *pipeDepth)
		}
		if *statsAddr != "" {
			slots++ // the metrics scrape client
		}
		cfg := core.Config{
			MaxClients:    slots,
			IdleParkAfter: *parkAfter,
		}
		if *chaosSeed != 0 {
			inj := fault.FromSeed(*chaosSeed)
			cfg.Hooks = inj
			log.Printf("ffwdserve: chaos injection on: %v", inj)
		}
		if *tracePath != "" || *statsAddr != "" {
			// The sink also backs /debug/delegation-trace, so a stats
			// endpoint alone turns capture on; recording costs one branch
			// plus a ring store per lifecycle event.
			sink = obs.NewTraceSink(obs.SinkConfig{Clients: cfg.MaxClients})
			cfg.Trace = sink
			if *tracePath != "" {
				log.Printf("ffwdserve: tracing delegation lifecycle to %s (written on shutdown)", *tracePath)
			}
		}
		d = apps.NewDelegatedKVConfig(*capacity, cfg)
		// Server-owned time: the delegation server's background hook
		// samples this source, advances the store clock, and drains due
		// expiries between request sweeps.
		d.SetTickSource(tick)
		if err := d.Start(); err != nil {
			log.Fatal(err)
		}
		if needText {
			var err error
			fb, err = newFFWDBackendPool(d, *clients, *pipeDepth)
			if err != nil {
				log.Fatal(err)
			}
			fb.shedAfter = *shedWait
			fb.defaultTTL = defTTL
			b = fb
		}
		if needBin {
			var err error
			execs, err = newFFWDExecs(d, *shards, *pipeDepth, defTTL)
			if err != nil {
				log.Fatal(err)
			}
		}
		if *statsAddr != "" {
			mc, err := d.NewClient()
			if err != nil {
				log.Fatal(err)
			}
			var mu sync.Mutex
			storeStats = func() (uint64, uint64, uint64, uint64) {
				mu.Lock()
				defer mu.Unlock()
				return mc.Stats()
			}
		}
		// Supervise the delegation server: restart it if it crashes
		// (mandatory under chaos injection, cheap insurance without).
		// The cadence is gentler than the library default: a rescue
		// kick wakes the parked server and costs a full idle-ladder
		// climb, so one per 100ms keeps an idle ffwdserve near zero
		// CPU while still repairing a crash within 5ms and a lost
		// wake within 100ms.
		sv = core.NewSupervisor(d.Server(), core.SupervisorConfig{
			Interval:  5 * time.Millisecond,
			KickAfter: 20,
		})
		sv.Start()
	case "mutex":
		lkv = apps.NewLockedKV(*capacity, func() sync.Locker { return &sync.Mutex{} })
		if needText {
			b = &mutexBackend{kv: lkv, tick: tick, defaultTTL: defTTL}
		}
		if needBin {
			execs = newMutexExecs(lkv, *shards, tick, defTTL)
		}
		storeStats = lkv.Stats
	default:
		log.Fatalf("unknown backend %q", *kind)
	}

	var fe *textFrontend
	if needText {
		fe = newTextFrontend(b)
		fe.maxConns = *maxConns
		fe.readTimeout = *readWait
		fe.writeTimeout = *writeWait
	}

	var bsrv *frontend.Server
	if needBin {
		var err error
		bsrv, err = frontend.NewServer(frontend.Config{
			Execs:        execs,
			QueueDepth:   *queueLen,
			MaxBatch:     *batchMax,
			MaxConns:     *maxConns,
			IdleTimeout:  *readWait,
			WriteTimeout: *writeWait,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	if *statsAddr != "" {
		expvar.Publish("ffwdserve", expvar.Func(func() any {
			m := map[string]uint64{}
			if fe != nil {
				m["accepted"] = fe.stats.accepted.Load()
				m["rejected"] = fe.stats.rejected.Load()
				m["active"] = uint64(fe.stats.active.Load())
				m["read_timeouts"] = fe.stats.readTimeouts.Load()
				m["long_lines"] = fe.stats.longLines.Load()
			}
			if fb != nil {
				m["busy_sheds"] = fb.sheds.Load()
			}
			if bsrv != nil {
				bm := bsrv.Metrics()
				m["bin_accepted"] = bm.Accepted.Load()
				m["bin_rejected"] = bm.Rejected.Load()
				m["bin_active"] = uint64(bm.Active.Load())
				m["bin_frames"] = bm.FramesIn.Load()
				m["bin_queue_sheds"] = bm.QueueSheds.Load()
				m["bin_batches"] = bm.Batches.Load()
				m["bin_flushes"] = bm.Flushes.Load()
			}
			if d != nil {
				st := d.Server().Stats()
				m["requests"] = st.Requests
				m["sweeps"] = st.Sweeps
				m["panics"] = st.Panics
				m["crashes"] = st.ServerCrashes
				m["restarts"] = st.Restarts
				m["ledger_skips"] = st.LedgerSkips
				m["retry_waits"] = st.RetryWaits
				m["maintain_runs"] = st.BackgroundRuns
				m["maintain_units"] = st.BackgroundUnits
			}
			if storeStats != nil {
				h, mi, ev, exp := storeStats()
				m["store_hits"] = h
				m["store_misses"] = mi
				m["store_evictions"] = ev
				m["store_expired"] = exp
			}
			if rb != nil {
				m["busy_sheds"] = rb.sheds.Load()
				m["local_ops"] = rb.localOps.Load()
				m["replicated_ops"] = rb.repOps.Load()
				gs := rkv.Group().Stats()
				m["replica_term"] = gs.Term
				m["replica_commit_index"] = gs.CommitIndex
				m["replicas_alive"] = uint64(gs.AliveReplicas)
				m["replica_failovers"] = gs.Failovers
				m["replica_ledger_hits"] = gs.LedgerHits
				m["replica_apply_dups"] = gs.ApplyDups
				m["replica_append_drops"] = gs.AppendDrops
				m["replica_snapshots"] = gs.Snapshots
				m["replica_log_truncated"] = gs.EntriesTruncated
			}
			return m
		}))
		// An explicit mux rather than http.DefaultServeMux: everything
		// the endpoint serves is listed here.
		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/metrics", metricsRegistry(fe, fb, d, rkv, rb, bsrv, storeStats).Handler())
		if sink != nil {
			// Live capture download: the snapshot is race-free against
			// the serving hot path, so this works on a loaded server.
			mux.HandleFunc("/debug/delegation-trace", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				if err := obs.WriteChrome(w, sink.Snapshot()); err != nil {
					log.Printf("ffwdserve: trace endpoint: %v", err)
				}
			})
		}
		go func() {
			log.Printf("ffwdserve: stats endpoint on http://%s (/metrics, /debug/vars, /debug/pprof, /debug/delegation-trace)", *statsAddr)
			log.Print(http.ListenAndServe(*statsAddr, mux))
		}()
	}

	var tln, bln net.Listener
	if fe != nil {
		var err error
		tln, err = net.Listen("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ffwdserve: %s backend listening on %s", *kind, tln.Addr())
	}
	if bsrv != nil {
		listenAt := *binAddr
		if *proto == "binary" {
			listenAt = *addr
		}
		var err error
		bln, err = net.Listen("tcp", listenAt)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("ffwdserve: binary frontend listening on %s (%d shards)", bln.Addr(), bsrv.Shards())
	}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, give in-flight
	// connections a grace period to drain, then force-close stragglers
	// and print the delegation server's final stats.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("ffwdserve: %v: stopped accepting, draining connections (up to %v)", sig, *drainWait)
		if tln != nil {
			tln.Close()
		}
		if bln != nil {
			bln.Close()
		}
	}()

	if fe != nil {
		if bsrv != nil {
			go bsrv.Serve(bln)
		}
		fe.acceptLoop(tln)
	} else {
		bsrv.Serve(bln)
	}

	if fe != nil {
		if n := fe.drain(*drainWait); n > 0 {
			log.Printf("ffwdserve: drain timeout: force-closed %d connection(s)", n)
		}
	}
	if bsrv != nil {
		if n := bsrv.Drain(*drainWait); n > 0 {
			log.Printf("ffwdserve: binary drain timeout: force-closed %d connection(s)", n)
		}
		bm := bsrv.Metrics()
		log.Printf("ffwdserve: binary stats: accepted=%d rejected=%d frames=%d batches=%d flushes=%d queue-sheds=%d decode-errors=%d idle-reaps=%d",
			bm.Accepted.Load(), bm.Rejected.Load(), bm.FramesIn.Load(),
			bm.Batches.Load(), bm.Flushes.Load(), bm.QueueSheds.Load(),
			bm.DecodeErrors.Load(), bm.IdleReaps.Load())
	}

	if sv != nil {
		sv.Stop()
	}
	var sheds uint64
	if fb != nil {
		sheds = fb.sheds.Load()
	}
	if rb != nil {
		sheds = rb.sheds.Load()
	}
	if fe != nil {
		log.Printf("ffwdserve: conn stats: accepted=%d rejected=%d read-timeouts=%d long-lines=%d busy-sheds=%d",
			fe.stats.accepted.Load(), fe.stats.rejected.Load(),
			fe.stats.readTimeouts.Load(), fe.stats.longLines.Load(), sheds)
	}
	if rb != nil {
		// The drain report keeps replicated writes separate from
		// leader-local reads: an in-flight replicated op at this point
		// was force-closed mid-commit and may still have landed on the
		// group, which is exactly what the replicated ledger disambiguates
		// for a retrying client.
		log.Printf("ffwdserve: op stats: local=%d (in-flight %d) replicated=%d (in-flight %d)",
			rb.localOps.Load(), rb.localInFlight.Load(),
			rb.repOps.Load(), rb.repInFlight.Load())
		gs := rkv.Group().Stats()
		log.Printf("ffwdserve: replica stats: term=%d leader=%d alive=%d/%d commit-index=%d commits=%d ledger-hits=%d apply-dups=%d no-quorum=%d snapshots=%d installs=%d truncated=%d failovers=%d restarts=%d",
			gs.Term, gs.LeaderID, gs.AliveReplicas, gs.Replicas, gs.CommitIndex,
			gs.Commits, gs.LedgerHits, gs.ApplyDups, gs.NoQuorum,
			gs.Snapshots, gs.SnapshotInstalls, gs.EntriesTruncated, gs.Failovers, gs.Restarts)
		if srv := rkv.Server(); srv != nil {
			st := srv.Stats()
			log.Printf("ffwdserve: leader server stats: requests=%d sweeps=%d batches=%d panics=%d crashes=%d ledger-skips=%d",
				st.Requests, st.Sweeps, st.Batches, st.Panics, st.ServerCrashes, st.LedgerSkips)
		}
		rkv.Stop()
	}
	if d != nil {
		st := d.Server().Stats()
		log.Printf("ffwdserve: final stats: requests=%d sweeps=%d batches=%d panics=%d crashes=%d restarts=%d kicks=%d heartbeat-misses=%d abandoned-slots=%d ledger-skips=%d retry-waits=%d",
			st.Requests, st.Sweeps, st.Batches, st.Panics, st.ServerCrashes,
			st.Restarts, st.Kicks, st.HeartbeatMisses, st.AbandonedSlots,
			st.LedgerSkips, st.RetryWaits)
		if st.LastPanic != nil {
			log.Printf("ffwdserve: last panic: %v", st.LastPanic)
		}
		d.Stop()
	}
	if sink != nil && *tracePath != "" {
		writeTrace(*tracePath, sink)
	}
	log.Print("ffwdserve: shutdown complete")
}

// writeTrace dumps the captured delegation trace as Chrome trace JSON and
// logs the per-operation phase breakdown so a shutdown doubles as a quick
// latency report.
func writeTrace(path string, sink *obs.TraceSink) {
	evs := sink.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		log.Printf("ffwdserve: trace: %v", err)
		return
	}
	err = obs.WriteChrome(f, evs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Printf("ffwdserve: trace: %v", err)
		return
	}
	log.Printf("ffwdserve: wrote %d trace events to %s (%d dropped)", len(evs), path, sink.Drops())
	if bd := obs.Attribute(evs); bd.Ops > 0 {
		log.Printf("ffwdserve: phase breakdown over %d ops:\n%s", bd.Ops, bd.Table())
	}
}

// metricsRegistry bridges the serving counters and the delegation
// server's stats into a Prometheus /metrics endpoint. Everything is a
// scrape-time sampling func: the counters already exist as atomics and
// core.Stats is a consistent snapshot, so the registry owns no state.
func metricsRegistry(fe *textFrontend, fb *ffwdBackend, d *apps.DelegatedKV, rkv *apps.ReplicatedKV, rb *repBackend, bsrv *frontend.Server, storeStats func() (h, m, e, exp uint64)) *obs.Registry {
	reg := obs.NewRegistry()
	u := func(load func() uint64) func() float64 {
		return func() float64 { return float64(load()) }
	}
	if fe != nil {
		reg.CounterFunc("ffwdserve_connections_accepted_total",
			"Connections accepted off the listener.", u(fe.stats.accepted.Load))
		reg.CounterFunc("ffwdserve_connections_rejected_total",
			"Connections rejected at admission (over -max-conns).", u(fe.stats.rejected.Load))
		reg.GaugeFunc("ffwdserve_connections_active",
			"Connections currently being served.",
			func() float64 { return float64(fe.stats.active.Load()) })
		reg.CounterFunc("ffwdserve_read_timeouts_total",
			"Connections dropped by the idle read deadline.", u(fe.stats.readTimeouts.Load))
		reg.CounterFunc("ffwdserve_long_lines_total",
			"Over-limit command lines rejected.", u(fe.stats.longLines.Load))
	}
	if bsrv != nil {
		bsrv.RegisterMetrics(reg)
	}
	if fb != nil {
		reg.CounterFunc("ffwdserve_busy_sheds_total",
			"Commands shed BUSY waiting for a pooled delegation client.", u(fb.sheds.Load))
	}
	if d != nil {
		srv := d.Server()
		stat := func(field func(core.Stats) uint64) func() float64 {
			return func() float64 { return float64(field(srv.Stats())) }
		}
		reg.CounterFunc("ffwd_requests_total",
			"Delegated requests executed.", stat(func(s core.Stats) uint64 { return s.Requests }))
		reg.CounterFunc("ffwd_sweeps_total",
			"Server slot sweeps.", stat(func(s core.Stats) uint64 { return s.Sweeps }))
		reg.CounterFunc("ffwd_panics_total",
			"Panics recovered inside delegated operations.", stat(func(s core.Stats) uint64 { return s.Panics }))
		reg.CounterFunc("ffwd_crashes_total",
			"Delegation server crashes.", stat(func(s core.Stats) uint64 { return s.ServerCrashes }))
		reg.CounterFunc("ffwd_restarts_total",
			"Delegation server restarts.", stat(func(s core.Stats) uint64 { return s.Restarts }))
		reg.CounterFunc("ffwd_ledger_skips_total",
			"Duplicate requests skipped by the exactly-once ledger.", stat(func(s core.Stats) uint64 { return s.LedgerSkips }))
		reg.CounterFunc("ffwd_retry_waits_total",
			"Client waits that spanned a server restart.", stat(func(s core.Stats) uint64 { return s.RetryWaits }))
		reg.CounterFunc("ffwd_maintain_runs_total",
			"Background maintenance runs between request sweeps (clock advance + wheel drain).",
			stat(func(s core.Stats) uint64 { return s.BackgroundRuns }))
		reg.CounterFunc("ffwd_maintain_units_total",
			"Maintenance work units (expiries fired + wheel cascades) done in the background hook.",
			stat(func(s core.Stats) uint64 { return s.BackgroundUnits }))
	}
	if storeStats != nil {
		reg.CounterFunc("ffwd_expiry_expired_total",
			"Entries reclaimed because their TTL deadline passed.",
			func() float64 { _, _, _, exp := storeStats(); return float64(exp) })
		reg.CounterFunc("ffwd_evict_evictions_total",
			"Entries evicted at capacity by the scan-resistant policy.",
			func() float64 { _, _, ev, _ := storeStats(); return float64(ev) })
	}
	if rkv != nil {
		g := rkv.Group()
		gstat := func(field func(replica.Stats) float64) func() float64 {
			return func() float64 { return field(g.Stats()) }
		}
		reg.GaugeFunc("ffwd_replica_term",
			"Current replication term (elections so far + 1).",
			gstat(func(s replica.Stats) float64 { return float64(s.Term) }))
		reg.GaugeFunc("ffwd_replica_commit_index",
			"Highest quorum-committed log index.",
			gstat(func(s replica.Stats) float64 { return float64(s.CommitIndex) }))
		reg.GaugeFunc("ffwd_replicas_alive",
			"Group members currently alive.",
			gstat(func(s replica.Stats) float64 { return float64(s.AliveReplicas) }))
		reg.CounterFunc("ffwd_replica_failovers_total",
			"Successful leader promotions after crashes.",
			gstat(func(s replica.Stats) float64 { return float64(s.Failovers) }))
		reg.CounterFunc("ffwd_replica_ledger_hits_total",
			"Write retries answered from the replicated ledger without re-execution.",
			gstat(func(s replica.Stats) float64 { return float64(s.LedgerHits) }))
		reg.CounterFunc("ffwd_replica_snapshot_installs_total",
			"Snapshot transfers into lagging or revived members.",
			gstat(func(s replica.Stats) float64 { return float64(s.SnapshotInstalls) }))
		reg.CounterFunc("ffwd_replica_log_truncated_total",
			"Log entries dropped by snapshot-backed prefix truncation.",
			gstat(func(s replica.Stats) float64 { return float64(s.EntriesTruncated) }))
		reg.CounterFunc("ffwd_replica_apply_dups_total",
			"Duplicate log entries fenced at apply time by the replicated ledger.",
			gstat(func(s replica.Stats) float64 { return float64(s.ApplyDups) }))
		reg.CounterFunc("ffwd_replica_append_drops_total",
			"Leader-to-follower appends dropped by partition injection.",
			gstat(func(s replica.Stats) float64 { return float64(s.AppendDrops) }))
		reg.CounterFunc("ffwd_replica_snapshots_total",
			"Snapshots taken across all group members.",
			gstat(func(s replica.Stats) float64 { return float64(s.Snapshots) }))
		if st := rkv.Store(); st != nil {
			wstat := func(field func(replog.Stats) uint64) func() float64 {
				return func() float64 { return float64(field(st.Stats())) }
			}
			reg.CounterFunc("ffwd_wal_appends_total",
				"Entry records appended to the durable WAL.",
				wstat(func(s replog.Stats) uint64 { return s.Appends }))
			reg.CounterFunc("ffwd_wal_syncs_total",
				"fsyncs issued for WAL record durability.",
				wstat(func(s replog.Stats) uint64 { return s.Syncs }))
			reg.CounterFunc("ffwd_wal_torn_records_total",
				"Torn tail records truncated away during recovery.",
				wstat(func(s replog.Stats) uint64 { return s.TornRecords }))
			reg.CounterFunc("ffwd_wal_compactions_total",
				"Snapshot-driven WAL prefix truncations.",
				wstat(func(s replog.Stats) uint64 { return s.Compactions }))
		}
		// The leader's delegation server changes identity across
		// failovers, so its request counter is sampled through the
		// group-aware accessor (0 while the shard is down).
		reg.CounterFunc("ffwd_requests_total",
			"Delegated requests executed by the current leader generation.",
			func() float64 {
				if srv := rkv.Server(); srv != nil {
					return float64(srv.Stats().Requests)
				}
				return 0
			})
	}
	if rb != nil {
		reg.CounterFunc("ffwdserve_busy_sheds_total",
			"Commands shed BUSY waiting for a pooled delegation client.",
			func() float64 { return float64(rb.sheds.Load()) })
		reg.CounterFunc("ffwdserve_local_ops_total",
			"Completed leader-local read commands (get/mget/len).",
			func() float64 { return float64(rb.localOps.Load()) })
		reg.CounterFunc("ffwdserve_replicated_ops_total",
			"Completed replicated write commands (set/del).",
			func() float64 { return float64(rb.repOps.Load()) })
		reg.GaugeFunc("ffwdserve_replicated_ops_in_flight",
			"Replicated write commands currently executing.",
			func() float64 { return float64(rb.repInFlight.Load()) })
	}
	return reg
}
