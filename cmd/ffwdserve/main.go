// Command ffwdserve is a memcached-like TCP key-value server whose store
// is served by a ffwd delegation server — the repository's end-to-end
// demonstration that a real network service can put its entire shared
// state behind delegation.
//
// Protocol (text, one command per line):
//
//	set <key> <value>   → STORED
//	get <key>           → VALUE <v> | NOT_FOUND
//	mget <k1> <k2> ...  → VALUES <v|-> <v|-> ...   (pipelined multi-get)
//	del <key>           → DELETED | NOT_FOUND
//	len                 → LEN <n>
//	stats               → STATS hits=<h> misses=<m> evictions=<e>
//	quit                → closes the connection
//
// Keys and values are unsigned 64-bit integers (value 2^64-1 is reserved).
//
// The delegation server uses the adaptive idle policy: at zero load it
// parks instead of spinning, so an idle ffwdserve burns no core; the first
// request after an idle period wakes it. Tune with -idle-park-after.
//
// The ffwd backend runs under a core.Supervisor, which restarts the
// delegation server if it ever crashes. SIGINT/SIGTERM shut down
// gracefully: accepting stops, in-flight connections drain (bounded by
// -drain-timeout), and the delegation server's final stats are logged.
// -chaos-seed injects a deterministic fault mix (see internal/fault) for
// resilience testing against a live server.
//
// Usage:
//
//	ffwdserve -addr :11211 -capacity 65536 -backend ffwd
//	ffwdserve -backend mutex     # global-lock baseline, for comparison
//	ffwdserve -chaos-seed 7      # fault-injected resilience run
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ffwd/internal/apps"
	"ffwd/internal/core"
	"ffwd/internal/fault"
)

// mgetMax bounds the number of keys per mget so one command line cannot
// monopolize the pooled pipeline client.
const mgetMax = 64

// backend abstracts the two store configurations.
type backend interface {
	handle(line string) string
}

// ffwdConn is one pooled delegation handle: a synchronous channel for
// single-key commands plus a pipelined window for mget.
type ffwdConn struct {
	kv   *apps.KVClient
	pipe *apps.KVPipeClient
	// mget scratch, reused so a command allocates only the response
	// string.
	vals  []uint64
	found []bool
}

type ffwdBackend struct {
	d *apps.DelegatedKV
	// Delegation client slots are a bounded resource, so they live in a
	// fixed channel-based pool: a command borrows one and returns it.
	// (sync.Pool is wrong here — it may drop items, leaking slots.)
	clients chan *ffwdConn
}

// newFFWDBackendPool preallocates every client slot: n pooled handles,
// each owning one synchronous channel and a pipeline of depth pipeDepth.
func newFFWDBackendPool(d *apps.DelegatedKV, n, pipeDepth int) (*ffwdBackend, error) {
	fb := &ffwdBackend{d: d, clients: make(chan *ffwdConn, n)}
	for i := 0; i < n; i++ {
		kv, err := d.NewClient()
		if err != nil {
			return nil, err
		}
		pipe, err := d.NewPipelinedClient(pipeDepth)
		if err != nil {
			return nil, err
		}
		fb.clients <- &ffwdConn{
			kv:    kv,
			pipe:  pipe,
			vals:  make([]uint64, mgetMax),
			found: make([]bool, mgetMax),
		}
	}
	return fb, nil
}

type mutexBackend struct {
	kv *apps.LockedKV
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		capacity  = flag.Int("capacity", 1<<16, "store capacity (entries)")
		kind      = flag.String("backend", "ffwd", "ffwd or mutex")
		clients   = flag.Int("clients", 64, "max concurrent delegation clients (ffwd backend)")
		pipeDepth = flag.Int("pipeline", 8, "pipelined requests in flight per mget (ffwd backend)")
		parkAfter = flag.Int("idle-park-after", 0, "empty sweeps before the idle server parks (0 = default, negative = never park)")
		chaosSeed = flag.Uint64("chaos-seed", 0, "inject a seed-derived fault mix into the delegation server (0 = off; ffwd backend)")
		drainWait = flag.Duration("drain-timeout", 2*time.Second, "grace period for in-flight connections on SIGINT/SIGTERM")
	)
	flag.Parse()

	var (
		b  backend
		d  *apps.DelegatedKV
		sv *core.Supervisor
	)
	switch *kind {
	case "ffwd":
		if *pipeDepth < 1 {
			*pipeDepth = 1
		}
		cfg := core.Config{
			// Each pooled handle owns 1 synchronous slot + pipeDepth
			// pipelined slots.
			MaxClients:    *clients * (1 + *pipeDepth),
			IdleParkAfter: *parkAfter,
		}
		if *chaosSeed != 0 {
			inj := fault.FromSeed(*chaosSeed)
			cfg.Hooks = inj
			log.Printf("ffwdserve: chaos injection on: %v", inj)
		}
		d = apps.NewDelegatedKVConfig(*capacity, cfg)
		if err := d.Start(); err != nil {
			log.Fatal(err)
		}
		fb, err := newFFWDBackendPool(d, *clients, *pipeDepth)
		if err != nil {
			log.Fatal(err)
		}
		b = fb
		// Supervise the delegation server: restart it if it crashes
		// (mandatory under chaos injection, cheap insurance without).
		// The cadence is gentler than the library default: a rescue
		// kick wakes the parked server and costs a full idle-ladder
		// climb, so one per 100ms keeps an idle ffwdserve near zero
		// CPU while still repairing a crash within 5ms and a lost
		// wake within 100ms.
		sv = core.NewSupervisor(d.Server(), core.SupervisorConfig{
			Interval:  5 * time.Millisecond,
			KickAfter: 20,
		})
		sv.Start()
	case "mutex":
		b = &mutexBackend{kv: apps.NewLockedKV(*capacity, func() sync.Locker { return &sync.Mutex{} })}
	default:
		log.Fatalf("unknown backend %q", *kind)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ffwdserve: %s backend listening on %s", *kind, ln.Addr())

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, give in-flight
	// connections a grace period to drain, then force-close stragglers
	// and print the delegation server's final stats.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("ffwdserve: %v: stopped accepting, draining connections (up to %v)", sig, *drainWait)
		ln.Close()
	}()

	var (
		connMu sync.Mutex
		conns  = make(map[net.Conn]struct{})
		inWG   sync.WaitGroup
	)
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed by the signal handler (or a fatal accept
			// error): fall through to the drain.
			break
		}
		connMu.Lock()
		conns[conn] = struct{}{}
		connMu.Unlock()
		inWG.Add(1)
		go func() {
			defer inWG.Done()
			serve(conn, b)
			connMu.Lock()
			delete(conns, conn)
			connMu.Unlock()
		}()
	}

	drained := make(chan struct{})
	go func() { inWG.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(*drainWait):
		connMu.Lock()
		n := len(conns)
		for c := range conns {
			c.Close()
		}
		connMu.Unlock()
		log.Printf("ffwdserve: drain timeout: force-closed %d connection(s)", n)
		<-drained
	}

	if sv != nil {
		sv.Stop()
	}
	if d != nil {
		st := d.Server().Stats()
		log.Printf("ffwdserve: final stats: requests=%d sweeps=%d batches=%d panics=%d crashes=%d restarts=%d kicks=%d heartbeat-misses=%d abandoned-slots=%d",
			st.Requests, st.Sweeps, st.Batches, st.Panics, st.ServerCrashes,
			st.Restarts, st.Kicks, st.HeartbeatMisses, st.AbandonedSlots)
		if st.LastPanic != nil {
			log.Printf("ffwdserve: last panic: %v", st.LastPanic)
		}
		d.Stop()
	}
	log.Print("ffwdserve: shutdown complete")
}

func serve(conn net.Conn, b backend) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			return
		}
		fmt.Fprintln(w, b.handle(line))
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// parse splits a command into op and numeric arguments.
func parse(line string) (op string, args []uint64, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("empty command")
	}
	op = strings.ToLower(fields[0])
	for _, f := range fields[1:] {
		v, perr := strconv.ParseUint(f, 10, 64)
		if perr != nil {
			return "", nil, fmt.Errorf("bad number %q", f)
		}
		args = append(args, v)
	}
	return op, args, nil
}

func (f *ffwdBackend) handle(line string) string {
	c := <-f.clients
	defer func() { f.clients <- c }()
	return dispatchStats(line,
		func(k uint64) (uint64, bool) { return c.kv.Get(k) },
		func(k, v uint64) { c.kv.Set(k, v) },
		func(k uint64) bool { return c.kv.Delete(k) },
		func() int { return c.kv.Len() },
		c.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			c.pipe.MultiGet(keys, c.vals, c.found)
			return c.vals[:len(keys)], c.found[:len(keys)]
		},
	)
}

func (m *mutexBackend) handle(line string) string {
	return dispatchStats(line, m.kv.Get, m.kv.Set, m.kv.Delete, m.kv.Len, m.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			// No pipelining behind a lock: the multi-get is just a loop.
			vals := make([]uint64, len(keys))
			found := make([]bool, len(keys))
			for i, k := range keys {
				vals[i], found[i] = m.kv.Get(k)
			}
			return vals, found
		})
}

const usageMsg = "ERROR usage: get k | mget k... | set k v | del k | len | stats | quit"

func dispatchStats(line string, get func(uint64) (uint64, bool), set func(uint64, uint64),
	del func(uint64) bool, length func() int, stats func() (h, m, e uint64),
	mget func([]uint64) ([]uint64, []bool)) string {
	op, args, err := parse(line)
	if err != nil {
		return "ERROR " + err.Error()
	}
	switch {
	case op == "get" && len(args) == 1:
		if v, ok := get(args[0]); ok {
			return fmt.Sprintf("VALUE %d", v)
		}
		return "NOT_FOUND"
	case op == "mget" && len(args) >= 1 && mget != nil:
		if len(args) > mgetMax {
			return fmt.Sprintf("ERROR mget limited to %d keys", mgetMax)
		}
		vals, found := mget(args)
		var sb strings.Builder
		sb.WriteString("VALUES")
		for i := range args {
			if found[i] {
				fmt.Fprintf(&sb, " %d", vals[i])
			} else {
				sb.WriteString(" -")
			}
		}
		return sb.String()
	case op == "set" && len(args) == 2:
		if args[1] == ^uint64(0) {
			return "ERROR value reserved"
		}
		set(args[0], args[1])
		return "STORED"
	case op == "del" && len(args) == 1:
		if del(args[0]) {
			return "DELETED"
		}
		return "NOT_FOUND"
	case op == "len" && len(args) == 0:
		return fmt.Sprintf("LEN %d", length())
	case op == "stats" && len(args) == 0 && stats != nil:
		h, m, e := stats()
		return fmt.Sprintf("STATS hits=%d misses=%d evictions=%d", h, m, e)
	default:
		return usageMsg
	}
}
