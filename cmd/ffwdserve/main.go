// Command ffwdserve is a memcached-like TCP key-value server whose store
// is served by a ffwd delegation server — the repository's end-to-end
// demonstration that a real network service can put its entire shared
// state behind delegation.
//
// Protocol (text, one command per line):
//
//	set <key> <value>   → STORED
//	get <key>           → VALUE <v> | NOT_FOUND
//	mget <k1> <k2> ...  → VALUES <v|-> <v|-> ...   (pipelined multi-get)
//	del <key>           → DELETED | NOT_FOUND
//	len                 → LEN <n>
//	stats               → STATS hits=<h> misses=<m> evictions=<e>
//	quit                → closes the connection
//
// Keys and values are unsigned 64-bit integers (value 2^64-1 is reserved).
//
// The delegation server uses the adaptive idle policy: at zero load it
// parks instead of spinning, so an idle ffwdserve burns no core; the first
// request after an idle period wakes it. Tune with -idle-park-after.
//
// Usage:
//
//	ffwdserve -addr :11211 -capacity 65536 -backend ffwd
//	ffwdserve -backend mutex     # global-lock baseline, for comparison
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"ffwd/internal/apps"
	"ffwd/internal/core"
)

// mgetMax bounds the number of keys per mget so one command line cannot
// monopolize the pooled pipeline client.
const mgetMax = 64

// backend abstracts the two store configurations.
type backend interface {
	handle(line string) string
}

// ffwdConn is one pooled delegation handle: a synchronous channel for
// single-key commands plus a pipelined window for mget.
type ffwdConn struct {
	kv   *apps.KVClient
	pipe *apps.KVPipeClient
	// mget scratch, reused so a command allocates only the response
	// string.
	vals  []uint64
	found []bool
}

type ffwdBackend struct {
	d *apps.DelegatedKV
	// Delegation client slots are a bounded resource, so they live in a
	// fixed channel-based pool: a command borrows one and returns it.
	// (sync.Pool is wrong here — it may drop items, leaking slots.)
	clients chan *ffwdConn
}

// newFFWDBackendPool preallocates every client slot: n pooled handles,
// each owning one synchronous channel and a pipeline of depth pipeDepth.
func newFFWDBackendPool(d *apps.DelegatedKV, n, pipeDepth int) (*ffwdBackend, error) {
	fb := &ffwdBackend{d: d, clients: make(chan *ffwdConn, n)}
	for i := 0; i < n; i++ {
		kv, err := d.NewClient()
		if err != nil {
			return nil, err
		}
		pipe, err := d.NewPipelinedClient(pipeDepth)
		if err != nil {
			return nil, err
		}
		fb.clients <- &ffwdConn{
			kv:    kv,
			pipe:  pipe,
			vals:  make([]uint64, mgetMax),
			found: make([]bool, mgetMax),
		}
	}
	return fb, nil
}

type mutexBackend struct {
	kv *apps.LockedKV
}

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address")
		capacity  = flag.Int("capacity", 1<<16, "store capacity (entries)")
		kind      = flag.String("backend", "ffwd", "ffwd or mutex")
		clients   = flag.Int("clients", 64, "max concurrent delegation clients (ffwd backend)")
		pipeDepth = flag.Int("pipeline", 8, "pipelined requests in flight per mget (ffwd backend)")
		parkAfter = flag.Int("idle-park-after", 0, "empty sweeps before the idle server parks (0 = default, negative = never park)")
	)
	flag.Parse()

	var b backend
	switch *kind {
	case "ffwd":
		if *pipeDepth < 1 {
			*pipeDepth = 1
		}
		// Each pooled handle owns 1 synchronous slot + pipeDepth
		// pipelined slots.
		d := apps.NewDelegatedKVConfig(*capacity, core.Config{
			MaxClients:    *clients * (1 + *pipeDepth),
			IdleParkAfter: *parkAfter,
		})
		if err := d.Start(); err != nil {
			log.Fatal(err)
		}
		fb, err := newFFWDBackendPool(d, *clients, *pipeDepth)
		if err != nil {
			log.Fatal(err)
		}
		b = fb
	case "mutex":
		b = &mutexBackend{kv: apps.NewLockedKV(*capacity, func() sync.Locker { return &sync.Mutex{} })}
	default:
		log.Fatalf("unknown backend %q", *kind)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ffwdserve: %s backend listening on %s", *kind, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go serve(conn, b)
	}
}

func serve(conn net.Conn, b backend) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			return
		}
		fmt.Fprintln(w, b.handle(line))
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// parse splits a command into op and numeric arguments.
func parse(line string) (op string, args []uint64, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("empty command")
	}
	op = strings.ToLower(fields[0])
	for _, f := range fields[1:] {
		v, perr := strconv.ParseUint(f, 10, 64)
		if perr != nil {
			return "", nil, fmt.Errorf("bad number %q", f)
		}
		args = append(args, v)
	}
	return op, args, nil
}

func (f *ffwdBackend) handle(line string) string {
	c := <-f.clients
	defer func() { f.clients <- c }()
	return dispatchStats(line,
		func(k uint64) (uint64, bool) { return c.kv.Get(k) },
		func(k, v uint64) { c.kv.Set(k, v) },
		func(k uint64) bool { return c.kv.Delete(k) },
		func() int { return c.kv.Len() },
		c.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			c.pipe.MultiGet(keys, c.vals, c.found)
			return c.vals[:len(keys)], c.found[:len(keys)]
		},
	)
}

func (m *mutexBackend) handle(line string) string {
	return dispatchStats(line, m.kv.Get, m.kv.Set, m.kv.Delete, m.kv.Len, m.kv.Stats,
		func(keys []uint64) ([]uint64, []bool) {
			// No pipelining behind a lock: the multi-get is just a loop.
			vals := make([]uint64, len(keys))
			found := make([]bool, len(keys))
			for i, k := range keys {
				vals[i], found[i] = m.kv.Get(k)
			}
			return vals, found
		})
}

const usageMsg = "ERROR usage: get k | mget k... | set k v | del k | len | stats | quit"

func dispatchStats(line string, get func(uint64) (uint64, bool), set func(uint64, uint64),
	del func(uint64) bool, length func() int, stats func() (h, m, e uint64),
	mget func([]uint64) ([]uint64, []bool)) string {
	op, args, err := parse(line)
	if err != nil {
		return "ERROR " + err.Error()
	}
	switch {
	case op == "get" && len(args) == 1:
		if v, ok := get(args[0]); ok {
			return fmt.Sprintf("VALUE %d", v)
		}
		return "NOT_FOUND"
	case op == "mget" && len(args) >= 1 && mget != nil:
		if len(args) > mgetMax {
			return fmt.Sprintf("ERROR mget limited to %d keys", mgetMax)
		}
		vals, found := mget(args)
		var sb strings.Builder
		sb.WriteString("VALUES")
		for i := range args {
			if found[i] {
				fmt.Fprintf(&sb, " %d", vals[i])
			} else {
				sb.WriteString(" -")
			}
		}
		return sb.String()
	case op == "set" && len(args) == 2:
		if args[1] == ^uint64(0) {
			return "ERROR value reserved"
		}
		set(args[0], args[1])
		return "STORED"
	case op == "del" && len(args) == 1:
		if del(args[0]) {
			return "DELETED"
		}
		return "NOT_FOUND"
	case op == "len" && len(args) == 0:
		return fmt.Sprintf("LEN %d", length())
	case op == "stats" && len(args) == 0 && stats != nil:
		h, m, e := stats()
		return fmt.Sprintf("STATS hits=%d misses=%d evictions=%d", h, m, e)
	default:
		return usageMsg
	}
}
