// Command ffwdserve is a memcached-like TCP key-value server whose store
// is served by a ffwd delegation server — the repository's end-to-end
// demonstration that a real network service can put its entire shared
// state behind delegation.
//
// Protocol (text, one command per line):
//
//	set <key> <value>   → STORED
//	get <key>           → VALUE <v> | NOT_FOUND
//	del <key>           → DELETED | NOT_FOUND
//	len                 → LEN <n>
//	stats               → STATS hits=<h> misses=<m> evictions=<e>
//	quit                → closes the connection
//
// Keys and values are unsigned 64-bit integers (value 2^64-1 is reserved).
//
// Usage:
//
//	ffwdserve -addr :11211 -capacity 65536 -backend ffwd
//	ffwdserve -backend mutex     # global-lock baseline, for comparison
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"

	"ffwd/internal/apps"
)

// backend abstracts the two store configurations.
type backend interface {
	handle(line string) string
}

type ffwdBackend struct {
	d *apps.DelegatedKV
	// Delegation client slots are a bounded resource, so they live in a
	// fixed channel-based pool: a command borrows one and returns it.
	// (sync.Pool is wrong here — it may drop items, leaking slots.)
	clients chan *apps.KVClient
}

// newFFWDBackendPool preallocates every client slot.
func newFFWDBackendPool(d *apps.DelegatedKV, n int) (*ffwdBackend, error) {
	fb := &ffwdBackend{d: d, clients: make(chan *apps.KVClient, n)}
	for i := 0; i < n; i++ {
		c, err := d.NewClient()
		if err != nil {
			return nil, err
		}
		fb.clients <- c
	}
	return fb, nil
}

type mutexBackend struct {
	kv *apps.LockedKV
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:11211", "listen address")
		capacity = flag.Int("capacity", 1<<16, "store capacity (entries)")
		kind     = flag.String("backend", "ffwd", "ffwd or mutex")
		clients  = flag.Int("clients", 64, "max concurrent delegation clients (ffwd backend)")
	)
	flag.Parse()

	var b backend
	switch *kind {
	case "ffwd":
		d := apps.NewDelegatedKV(*capacity, *clients)
		if err := d.Start(); err != nil {
			log.Fatal(err)
		}
		fb, err := newFFWDBackendPool(d, *clients)
		if err != nil {
			log.Fatal(err)
		}
		b = fb
	case "mutex":
		b = &mutexBackend{kv: apps.NewLockedKV(*capacity, func() sync.Locker { return &sync.Mutex{} })}
	default:
		log.Fatalf("unknown backend %q", *kind)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("ffwdserve: %s backend listening on %s", *kind, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go serve(conn, b)
	}
}

func serve(conn net.Conn, b backend) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			return
		}
		fmt.Fprintln(w, b.handle(line))
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// parse splits a command into op and numeric arguments.
func parse(line string) (op string, args []uint64, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, fmt.Errorf("empty command")
	}
	op = strings.ToLower(fields[0])
	for _, f := range fields[1:] {
		v, perr := strconv.ParseUint(f, 10, 64)
		if perr != nil {
			return "", nil, fmt.Errorf("bad number %q", f)
		}
		args = append(args, v)
	}
	return op, args, nil
}

func (f *ffwdBackend) handle(line string) string {
	c := <-f.clients
	defer func() { f.clients <- c }()
	return dispatchStats(line,
		func(k uint64) (uint64, bool) { return c.Get(k) },
		func(k, v uint64) { c.Set(k, v) },
		func(k uint64) bool { return c.Delete(k) },
		func() int { return c.Len() },
		c.Stats,
	)
}

func (m *mutexBackend) handle(line string) string {
	return dispatchStats(line, m.kv.Get, m.kv.Set, m.kv.Delete, m.kv.Len, m.kv.Stats)
}

func dispatchStats(line string, get func(uint64) (uint64, bool), set func(uint64, uint64),
	del func(uint64) bool, length func() int, stats func() (h, m, e uint64)) string {
	op, args, err := parse(line)
	if err != nil {
		return "ERROR " + err.Error()
	}
	switch {
	case op == "get" && len(args) == 1:
		if v, ok := get(args[0]); ok {
			return fmt.Sprintf("VALUE %d", v)
		}
		return "NOT_FOUND"
	case op == "set" && len(args) == 2:
		if args[1] == ^uint64(0) {
			return "ERROR value reserved"
		}
		set(args[0], args[1])
		return "STORED"
	case op == "del" && len(args) == 1:
		if del(args[0]) {
			return "DELETED"
		}
		return "NOT_FOUND"
	case op == "len" && len(args) == 0:
		return fmt.Sprintf("LEN %d", length())
	case op == "stats" && len(args) == 0 && stats != nil:
		h, m, e := stats()
		return fmt.Sprintf("STATS hits=%d misses=%d evictions=%d", h, m, e)
	default:
		return "ERROR usage: get k | set k v | del k | len | stats | quit"
	}
}
