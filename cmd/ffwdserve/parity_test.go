package main

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ffwd/internal/apps"
	"ffwd/internal/frontend"
	"ffwd/internal/wireproto"
)

// binParityClient speaks the binary protocol one request at a time and
// renders each response in the text protocol's reply format, so the
// parity test can compare the two frontends verbatim.
type binParityClient struct {
	t    *testing.T
	c    net.Conn
	rbuf []byte
	rlen int
	id   uint64
}

func dialBinary(t *testing.T, addr string) *binParityClient {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &binParityClient{t: t, c: c, rbuf: make([]byte, 4096)}
}

func (b *binParityClient) roundTrip(req *wireproto.Request) wireproto.Response {
	b.t.Helper()
	b.id++
	req.ID = b.id
	frame := wireproto.AppendRequest(nil, req)
	if _, err := b.c.Write(frame); err != nil {
		b.t.Fatal(err)
	}
	b.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		body, n, err := wireproto.Split(b.rbuf[:b.rlen])
		if err == nil {
			var resp wireproto.Response
			if derr := wireproto.DecodeResponse(body, &resp); derr != nil {
				b.t.Fatalf("decode response: %v", derr)
			}
			if resp.ID != req.ID {
				b.t.Fatalf("response ID = %d, want %d", resp.ID, req.ID)
			}
			vals := append([]uint64(nil), resp.Vals...)
			resp.Vals = vals
			b.rlen = copy(b.rbuf, b.rbuf[n:b.rlen])
			return resp
		}
		if !errors.Is(err, wireproto.ErrShort) {
			b.t.Fatalf("split: %v", err)
		}
		m, rerr := b.c.Read(b.rbuf[b.rlen:])
		if rerr != nil {
			b.t.Fatalf("read: %v", rerr)
		}
		b.rlen += m
	}
}

// handle runs one text-protocol command through the binary frontend and
// renders the reply in the text reply format. Formatting the stats
// response through statsLine is the point: the parity test fails if the
// binary frontend's stats fields could not reproduce the text reply.
func (b *binParityClient) handle(line string) string {
	b.t.Helper()
	op, args, err := parse(line)
	if err != nil {
		b.t.Fatalf("parse(%q): %v", line, err)
	}
	var req wireproto.Request
	switch op {
	case "get":
		req.Op, req.Key = wireproto.OpGet, args[0]
	case "set":
		req.Op, req.Key, req.Val = wireproto.OpSet, args[0], args[1]
	case "setx":
		req.Op, req.Key, req.Val, req.TTL = wireproto.OpSetTTL, args[0], args[1], args[2]
	case "touch":
		req.Op, req.Key, req.TTL = wireproto.OpTouch, args[0], args[1]
	case "del":
		req.Op, req.Key = wireproto.OpDel, args[0]
	case "mget":
		req.Op, req.Keys = wireproto.OpMGet, args
	case "len":
		req.Op = wireproto.OpLen
	case "stats":
		req.Op = wireproto.OpStats
	default:
		b.t.Fatalf("no binary equivalent for %q", op)
	}
	resp := b.roundTrip(&req)
	switch resp.Type {
	case wireproto.RespValue:
		return fmt.Sprintf("VALUE %d", resp.Val)
	case wireproto.RespNotFound:
		return "NOT_FOUND"
	case wireproto.RespStored:
		return "STORED"
	case wireproto.RespDeleted:
		return "DELETED"
	case wireproto.RespTouched:
		return "TOUCHED"
	case wireproto.RespLen:
		return fmt.Sprintf("LEN %d", resp.Val)
	case wireproto.RespStats:
		return statsLine(resp.Hits, resp.Misses, resp.Evictions, resp.Expired)
	case wireproto.RespValues:
		var sb strings.Builder
		sb.WriteString("VALUES")
		for _, v := range resp.Vals {
			if v == wireproto.MissValue {
				sb.WriteString(" -")
			} else {
				fmt.Fprintf(&sb, " %d", v)
			}
		}
		return sb.String()
	case wireproto.RespError:
		if resp.Code == wireproto.CodeValueReserved {
			return "ERROR value reserved"
		}
		return fmt.Sprintf("ERROR code %d", resp.Code)
	default:
		b.t.Fatalf("unexpected response type 0x%02x", resp.Type)
		return ""
	}
}

// TestFrontendParity runs one op sequence through both frontends over
// TCP — the text protocol against a textFrontend, the binary protocol
// against the internal/frontend dataplane — each over its own
// identically configured delegated store, and requires every reply to
// match verbatim once the binary responses are rendered in text form.
// The stats step pins the regression the shared statsLine formatter
// exists for: both frontends must report identical stats fields.
func TestFrontendParity(t *testing.T) {
	const (
		capacity = 1024
		shards   = 2
		depth    = 4
	)

	// Text frontend over its own store.
	tb := newFFWDBackend(t, capacity, 4)
	taddr := listen(t, newTextFrontend(tb))
	tconn, err := net.Dial("tcp", taddr)
	if err != nil {
		t.Fatal(err)
	}
	defer tconn.Close()
	trd := make([]byte, 0, 4096)
	textHandle := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintln(tconn, line); err != nil {
			t.Fatal(err)
		}
		tconn.SetReadDeadline(time.Now().Add(5 * time.Second))
		for {
			if i := strings.IndexByte(string(trd), '\n'); i >= 0 {
				line := strings.TrimRight(string(trd[:i]), "\r\n")
				trd = append(trd[:0], trd[i+1:]...)
				return line
			}
			var buf [512]byte
			n, err := tconn.Read(buf[:])
			if err != nil {
				t.Fatal(err)
			}
			trd = append(trd, buf[:n]...)
		}
	}

	// Binary frontend over a second store with the same capacity.
	d := apps.NewDelegatedKV(capacity, ffwdExecSlots(shards, depth))
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	execs, err := newFFWDExecs(d, shards, depth, 0)
	if err != nil {
		t.Fatal(err)
	}
	bsrv, err := frontend.NewServer(frontend.Config{Execs: execs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bsrv.Close)
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bln.Close() })
	go bsrv.Serve(bln)
	bc := dialBinary(t, bln.Addr().String())

	steps := []string{
		"get 1",
		"set 1 42",
		"get 1",
		"set 1 43",
		"get 1",
		"len",
		"del 1",
		"del 1",
		"get 1",
		"set 2 18446744073709551615",
		"setx 2 18446744073709551615 5",
		"setx 20 200 1000000",
		"get 20",
		"touch 20 2000000",
		"touch 21 5",
		"set 10 100",
		"set 12 120",
		"mget 10 11 12",
		"get 10",
		"get 11",
		"len",
		"stats",
	}
	for _, cmd := range steps {
		want := textHandle(cmd)
		got := bc.handle(cmd)
		if got != want {
			t.Fatalf("parity break on %q: text=%q binary=%q", cmd, want, got)
		}
	}
}
