package main

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"ffwd/internal/apps"
	"ffwd/internal/core"
	"ffwd/internal/fault"
)

func newRepBackend(t *testing.T, capacity, clients int, hooks core.Hooks) *repBackend {
	t.Helper()
	r, err := apps.NewReplicatedKV(capacity, apps.ReplicatedConfig{
		Replicas:   3,
		Core:       core.Config{MaxClients: clients, Hooks: hooks},
		Supervisor: core.SupervisorConfig{Interval: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return newRepBackendPool(r, clients)
}

// TestReplicatedServeOverTCP: the replicated backend speaks the same
// protocol over a live connection, and `stats` reports the group's
// replication counters.
func TestReplicatedServeOverTCP(t *testing.T) {
	rb := newRepBackend(t, 1024, 4, nil)
	addr := listen(t, newTextFrontend(rb))
	_, _, send := dialText(t, addr)

	if got := send("set 7 700"); got != "STORED" {
		t.Fatalf("set: %q", got)
	}
	if got := send("get 7"); got != "VALUE 700" {
		t.Fatalf("get: %q", got)
	}
	if got := send("mget 7 8"); got != "VALUES 700 -" {
		t.Fatalf("mget: %q", got)
	}
	if got := send("del 7"); got != "DELETED" {
		t.Fatalf("del: %q", got)
	}
	if got := send("del 7"); got != "NOT_FOUND" {
		t.Fatalf("second del: %q", got)
	}
	if got := send("len"); got != "LEN 0" {
		t.Fatalf("len: %q", got)
	}
	st := send("stats")
	for _, want := range []string{"STATS term=1", "alive=3/3", "commits=3", "failovers=0"} {
		if !strings.Contains(st, want) {
			t.Fatalf("stats %q missing %q", st, want)
		}
	}
	if got := send("set 1 18446744073709551613"); got != "ERROR value reserved" {
		t.Fatalf("reserved value: %q", got)
	}
	if got := send("bogus"); got != usageMsg {
		t.Fatalf("bogus: %q", got)
	}
	// The drain-report split: 5 local reads (get, mget, len, and the two
	// below), 3 replicated writes (set + 2 dels; the reserved-value set
	// and the usage error are rejected before reaching the counters).
	if got := send("get 8"); got != "NOT_FOUND" {
		t.Fatalf("get 8: %q", got)
	}
	if got := send("len"); got != "LEN 0" {
		t.Fatalf("len: %q", got)
	}
	if lo, ro := rb.localOps.Load(), rb.repOps.Load(); lo != 5 || ro != 3 {
		t.Fatalf("op split local=%d replicated=%d, want 5/3", lo, ro)
	}
	if lf, rf := rb.localInFlight.Load(), rb.repInFlight.Load(); lf != 0 || rf != 0 {
		t.Fatalf("in-flight local=%d replicated=%d after quiesce, want 0/0", lf, rf)
	}
}

// TestReplicatedServeFailover: a seeded leader kill lands mid-flush on a
// live TCP write; the client sees STORED anyway (served by the promoted
// leader via the replicated ledger) and the value survives the crash.
func TestReplicatedServeFailover(t *testing.T) {
	inj := fault.New(fault.Plan{KillAtOp: 4})
	rb := newRepBackend(t, 1024, 2, inj)
	addr := listen(t, newTextFrontend(rb))
	_, _, send := dialText(t, addr)

	for i := 1; i <= 6; i++ {
		if got := send("set " + itoa(i) + " " + itoa(100+i)); got != "STORED" {
			t.Fatalf("set %d: %q", i, got)
		}
	}
	for i := 1; i <= 6; i++ {
		if got := send("get " + itoa(i)); got != "VALUE "+itoa(100+i) {
			t.Fatalf("get %d after failover: %q", i, got)
		}
	}
	st := rb.r.Group().Stats()
	if st.Failovers != 1 || st.LedgerHits == 0 {
		t.Fatalf("failovers=%d ledger-hits=%d; the kill missed the workload", st.Failovers, st.LedgerHits)
	}
	if !strings.Contains(send("stats"), "failovers=1") {
		t.Fatalf("stats after failover: %q", send("stats"))
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
