package main

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"ffwd/internal/apps"
)

// The replicated backend: -replicas N (N > 1) serves the same protocol
// through an apps.ReplicatedKV, a raft-style replica group in which every
// write is quorum-acknowledged before STORED/DELETED goes back on the
// wire, and a crash of the serving leader promotes a follower instead of
// losing the store. Reads stay leader-local; writes pay the replication
// toll — `stats` reports the group's term, commit index, and failover
// counters instead of the single store's hit/miss line.

// repConn is one pooled replicated-delegation handle with its own
// replication identity (clientID, seq) for exactly-once dedup.
type repConn struct {
	kv *apps.RKVClient
}

type repBackend struct {
	r       *apps.ReplicatedKV
	clients chan *repConn

	// shedAfter/sheds mirror ffwdBackend's bounded pool wait.
	shedAfter time.Duration
	sheds     atomic.Uint64

	// The drain report separates leader-local ops (get/mget/len) from
	// replicated ops (set/del): a replicated op force-closed mid-flight
	// may still commit on the group, so its in-flight count is the
	// interesting number at shutdown.
	localOps      atomic.Uint64 // completed leader-local reads
	repOps        atomic.Uint64 // completed replicated writes
	localInFlight atomic.Int64
	repInFlight   atomic.Int64
}

// newRepBackendPool preallocates n pooled replication handles.
func newRepBackendPool(r *apps.ReplicatedKV, n int) *repBackend {
	rb := &repBackend{r: r, clients: make(chan *repConn, n)}
	for i := 0; i < n; i++ {
		rb.clients <- &repConn{kv: r.NewClient()}
	}
	return rb
}

// repValueMax is the first reserved value: the top of the value space
// carries the replicated response sentinels.
const repValueMax = ^uint64(2)

func (rb *repBackend) handle(line string) string {
	var c *repConn
	if rb.shedAfter <= 0 {
		c = <-rb.clients
	} else {
		select {
		case c = <-rb.clients:
		default:
			t := time.NewTimer(rb.shedAfter)
			select {
			case c = <-rb.clients:
				t.Stop()
			case <-t.C:
				rb.sheds.Add(1)
				return "BUSY delegation pool saturated"
			}
		}
	}
	defer func() { rb.clients <- c }()
	return rb.dispatch(c, line)
}

// dispatch is the replicated protocol switch. It cannot reuse
// dispatchStats: replicated ops can fail (retries exhausted during a
// failover or quorum loss), and a failed write must answer BUSY, never
// STORED.
func (rb *repBackend) dispatch(c *repConn, line string) string {
	op, args, err := parse(line)
	if err != nil {
		return "ERROR " + err.Error()
	}
	local := func(f func() string) string {
		rb.localInFlight.Add(1)
		defer rb.localInFlight.Add(-1)
		resp := f()
		rb.localOps.Add(1)
		return resp
	}
	replicated := func(f func() string) string {
		rb.repInFlight.Add(1)
		defer rb.repInFlight.Add(-1)
		resp := f()
		rb.repOps.Add(1)
		return resp
	}
	const busy = "BUSY replicated shard unavailable"
	switch {
	case op == "get" && len(args) == 1:
		return local(func() string {
			v, ok, err := c.kv.Get(args[0])
			switch {
			case err != nil:
				return busy
			case ok:
				return fmt.Sprintf("VALUE %d", v)
			default:
				return "NOT_FOUND"
			}
		})
	case op == "mget" && len(args) >= 1:
		if len(args) > mgetMax {
			return fmt.Sprintf("ERROR mget limited to %d keys", mgetMax)
		}
		return local(func() string {
			var sb strings.Builder
			sb.WriteString("VALUES")
			for _, k := range args {
				v, ok, err := c.kv.Get(k)
				switch {
				case err != nil:
					return busy
				case ok:
					fmt.Fprintf(&sb, " %d", v)
				default:
					sb.WriteString(" -")
				}
			}
			return sb.String()
		})
	case op == "set" && len(args) == 2:
		if args[1] >= repValueMax {
			return "ERROR value reserved"
		}
		return replicated(func() string {
			if err := c.kv.Set(args[0], args[1]); err != nil {
				return busy
			}
			return "STORED"
		})
	case op == "del" && len(args) == 1:
		return replicated(func() string {
			present, err := c.kv.Delete(args[0])
			switch {
			case err != nil:
				return busy
			case present:
				return "DELETED"
			default:
				return "NOT_FOUND"
			}
		})
	case op == "len" && len(args) == 0:
		return local(func() string {
			n, err := c.kv.Len()
			if err != nil {
				return busy
			}
			return fmt.Sprintf("LEN %d", n)
		})
	case op == "stats" && len(args) == 0:
		st := rb.r.Group().Stats()
		return fmt.Sprintf("STATS term=%d leader=%d alive=%d/%d commit_index=%d commits=%d ledger_hits=%d apply_dups=%d append_drops=%d failovers=%d snapshots=%d snapshot_installs=%d log_truncated=%d remote_acks=%d remote_nacks=%d",
			st.Term, st.LeaderID, st.AliveReplicas, st.Replicas, st.CommitIndex,
			st.Commits, st.LedgerHits, st.ApplyDups, st.AppendDrops, st.Failovers,
			st.Snapshots, st.SnapshotInstalls, st.EntriesTruncated, st.RemoteAcks, st.RemoteNacks)
	default:
		return usageMsg
	}
}
