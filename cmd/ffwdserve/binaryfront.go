package main

import (
	"ffwd/internal/apps"
	"ffwd/internal/frontend"
	"ffwd/internal/wireproto"
)

// This file adapts the two store configurations to the binary dataplane
// (internal/frontend): each shard executor owns its own delegation
// handles — a KVBatchClient window for pipelined singles, a
// KVPipeClient for mget, a KVClient for the synchronous stats reads —
// all against the one shared DelegatedKV, so the store stays globally
// consistent across shards while every executor pipelines
// independently.

// ffwdExec executes one shard's batches against the delegated KV.
// Singles flow through the batch client's async window; mget and stats
// are synchronous, so pending singles are flushed first to preserve
// within-shard submission order.
type ffwdExec struct {
	batch *apps.KVBatchClient
	pipe  *apps.KVPipeClient
	kv    *apps.KVClient

	// defTTL, when nonzero, turns plain OpSet into a TTL'd store (the
	// -default-ttl flag, in server clock ticks).
	defTTL uint64

	// pend maps the batch client's completion seq to the op index of
	// the in-progress batch; curOps/curResults alias ExecBatch's
	// arguments so the completion callback is allocation-free.
	pend       []int
	curOps     []frontend.Op
	curResults []frontend.Result
	found      [wireproto.MGetMax]bool
}

// ffwdExecWindow is each shard's pipelined-singles depth: deep enough
// to overlap a full executor batch through the delegation server's
// sweeps, small enough that per-shard slot cost stays trivial.
const ffwdExecWindow = 16

// newFFWDExecs builds one executor per shard. Slot budget per shard:
// ffwdExecWindow async + 1 synchronous + pipeDepth pipelined.
func newFFWDExecs(d *apps.DelegatedKV, shards, pipeDepth int, defTTL uint64) ([]frontend.Exec, error) {
	execs := make([]frontend.Exec, 0, shards)
	for i := 0; i < shards; i++ {
		batch, err := d.NewBatchClient(ffwdExecWindow)
		if err != nil {
			return nil, err
		}
		pipe, err := d.NewPipelinedClient(pipeDepth)
		if err != nil {
			return nil, err
		}
		kv, err := d.NewClient()
		if err != nil {
			return nil, err
		}
		e := &ffwdExec{batch: batch, pipe: pipe, kv: kv, defTTL: defTTL, pend: make([]int, 0, 256)}
		batch.OnDone(e.onDone)
		execs = append(execs, e)
	}
	return execs, nil
}

// ffwdExecSlots is the delegation-slot budget newFFWDExecs consumes,
// for sizing core.Config.MaxClients.
func ffwdExecSlots(shards, pipeDepth int) int {
	return shards * (ffwdExecWindow + 1 + pipeDepth)
}

// onDone maps one completed single back to its result slot. ret is the
// delegated function's raw return word; the op kind decodes it.
func (e *ffwdExec) onDone(seq int, ret uint64) {
	i := e.pend[seq]
	res := &e.curResults[i]
	switch e.curOps[i].Kind {
	case wireproto.OpGet:
		if ret == wireproto.MissValue {
			res.Status = wireproto.RespNotFound
		} else {
			res.Status, res.Val = wireproto.RespValue, ret
		}
	case wireproto.OpSet, wireproto.OpSetTTL:
		res.Status = wireproto.RespStored
	case wireproto.OpDel:
		if ret == 1 {
			res.Status = wireproto.RespDeleted
		} else {
			res.Status = wireproto.RespNotFound
		}
	case wireproto.OpTouch:
		if ret == 1 {
			res.Status = wireproto.RespTouched
		} else {
			res.Status = wireproto.RespNotFound
		}
	case wireproto.OpLen:
		res.Status, res.Val = wireproto.RespLen, ret
	}
}

func (e *ffwdExec) flushPend() {
	if len(e.pend) == 0 {
		return
	}
	e.batch.Flush()
	e.pend = e.pend[:0]
}

func (e *ffwdExec) ExecBatch(ops []frontend.Op, results []frontend.Result) {
	e.curOps, e.curResults = ops, results
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case wireproto.OpGet:
			e.pend = append(e.pend, i)
			e.batch.Get(op.Key)
		case wireproto.OpSet:
			e.pend = append(e.pend, i)
			if e.defTTL > 0 {
				e.batch.SetTTL(op.Key, op.Val, e.defTTL)
			} else {
				e.batch.Set(op.Key, op.Val)
			}
		case wireproto.OpSetTTL:
			e.pend = append(e.pend, i)
			e.batch.SetTTL(op.Key, op.Val, op.TTL)
		case wireproto.OpTouch:
			e.pend = append(e.pend, i)
			e.batch.Touch(op.Key, op.TTL)
		case wireproto.OpDel:
			e.pend = append(e.pend, i)
			e.batch.Del(op.Key)
		case wireproto.OpLen:
			e.pend = append(e.pend, i)
			e.batch.Len()
		case wireproto.OpMGet:
			// Synchronous op: drain the async window first so a
			// pipelined set on this shard lands before the multi-get
			// reads.
			e.flushPend()
			e.pipe.MultiGet(op.Keys, results[i].Vals, e.found[:len(op.Keys)])
			for j := range op.Keys {
				if !e.found[j] {
					results[i].Vals[j] = wireproto.MissValue
				}
			}
			results[i].Status = wireproto.RespValues
		case wireproto.OpStats:
			e.flushPend()
			h, m, ev, exp := e.kv.Stats()
			results[i].Status = wireproto.RespStats
			results[i].Hits, results[i].Misses, results[i].Evictions, results[i].Expired = h, m, ev, exp
		}
	}
	e.flushPend()
	e.curOps, e.curResults = nil, nil
}

// mutexExec is the global-lock baseline behind the binary frontend:
// every shard funnels into the one LockedKV, so the binary A/B against
// -backend mutex measures the frontend and the lock separately.
type mutexExec struct {
	kv *apps.LockedKV
	// tick supplies the logical clock for TTL ops; the executor advances
	// the store clock (sweeping due entries inline) because no server
	// goroutine owns the lock-based store's time. nil freezes the clock.
	tick func() uint64
	// defTTL mirrors ffwdExec.defTTL for plain OpSet.
	defTTL uint64
}

func newMutexExecs(kv *apps.LockedKV, shards int, tick func() uint64, defTTL uint64) []frontend.Exec {
	execs := make([]frontend.Exec, shards)
	for i := range execs {
		execs[i] = &mutexExec{kv: kv, tick: tick, defTTL: defTTL}
	}
	return execs
}

func (e *mutexExec) now() uint64 {
	if e.tick == nil {
		return e.kv.Clock()
	}
	return e.kv.AdvanceClock(e.tick())
}

// get reads key, advancing the clock first when a tick source exists:
// without it a pure-read workload never moves time forward and TTL'd
// entries read back forever (GetAt does both under one lock
// acquisition).
func (e *mutexExec) get(k uint64) (uint64, bool) {
	if e.tick == nil {
		return e.kv.Get(k)
	}
	return e.kv.GetAt(k, e.tick())
}

func (e *mutexExec) ExecBatch(ops []frontend.Op, results []frontend.Result) {
	for i := range ops {
		op, res := &ops[i], &results[i]
		switch op.Kind {
		case wireproto.OpGet:
			if v, ok := e.get(op.Key); ok {
				res.Status, res.Val = wireproto.RespValue, v
			} else {
				res.Status = wireproto.RespNotFound
			}
		case wireproto.OpSet:
			if e.defTTL > 0 {
				e.kv.SetTTL(op.Key, op.Val, e.now(), e.defTTL)
			} else {
				e.kv.Set(op.Key, op.Val)
			}
			res.Status = wireproto.RespStored
		case wireproto.OpSetTTL:
			e.kv.SetTTL(op.Key, op.Val, e.now(), op.TTL)
			res.Status = wireproto.RespStored
		case wireproto.OpTouch:
			if e.kv.Touch(op.Key, e.now(), op.TTL) {
				res.Status = wireproto.RespTouched
			} else {
				res.Status = wireproto.RespNotFound
			}
		case wireproto.OpDel:
			if e.kv.Delete(op.Key) {
				res.Status = wireproto.RespDeleted
			} else {
				res.Status = wireproto.RespNotFound
			}
		case wireproto.OpMGet:
			for j, k := range op.Keys {
				if v, ok := e.get(k); ok {
					res.Vals[j] = v
				} else {
					res.Vals[j] = wireproto.MissValue
				}
			}
			res.Status = wireproto.RespValues
		case wireproto.OpLen:
			res.Status, res.Val = wireproto.RespLen, uint64(e.kv.Len())
		case wireproto.OpStats:
			h, m, ev, exp := e.kv.Stats()
			res.Status = wireproto.RespStats
			res.Hits, res.Misses, res.Evictions, res.Expired = h, m, ev, exp
		}
	}
}
