// Command ffwdreport regenerates the full evaluation — every table and
// figure on every modelled machine — into a directory of CSV files plus a
// Markdown index, mirroring the paper's technical report ("for full
// evaluation results on all four systems, please refer to our technical
// report").
//
// Usage:
//
//	ffwdreport -out report/
//	ffwdreport -out report/ -duration 2e6
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ffwd/internal/bench"
	"ffwd/internal/simarch"
)

func main() {
	var (
		out      = flag.String("out", "report", "output directory")
		duration = flag.Float64("duration", 1e6, "simulated nanoseconds per configuration")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	if err := run(*out, *duration, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// machineSlug builds a filename-safe machine identifier.
func machineSlug(m simarch.Machine) string {
	s := strings.ToLower(m.Name)
	s = strings.NewReplacer(" ", "", "-", "").Replace(s)
	return s
}

func run(out string, duration float64, seed uint64) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var index strings.Builder
	index.WriteString("# ffwd evaluation report\n\n")
	index.WriteString("Regenerated from the machine models in internal/simarch; ")
	index.WriteString("one CSV per (experiment, machine).\n\n")
	index.WriteString("| experiment | " + machineHeader() + " |\n")
	index.WriteString("|---|" + strings.Repeat("---|", len(simarch.Machines)) + "\n")

	for _, exp := range bench.Experiments() {
		row := []string{exp.ID}
		for _, m := range simarch.Machines {
			fig, err := bench.Run(exp.ID, bench.Options{
				Machine: m, DurationNS: duration, Seed: seed,
			})
			if err != nil {
				return err
			}
			name := fmt.Sprintf("%s-%s.csv", exp.ID, machineSlug(m))
			path := filepath.Join(out, name)
			if err := os.WriteFile(path, []byte(bench.FormatCSV(fig)), 0o644); err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("[csv](%s)", name))
			fmt.Printf("wrote %s\n", path)
		}
		index.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	indexPath := filepath.Join(out, "README.md")
	if err := os.WriteFile(indexPath, []byte(index.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d experiments × %d machines)\n",
		indexPath, len(bench.Experiments()), len(simarch.Machines))
	return nil
}

func machineHeader() string {
	names := make([]string, len(simarch.Machines))
	for i, m := range simarch.Machines {
		names[i] = m.Name
	}
	return strings.Join(names, " | ")
}
