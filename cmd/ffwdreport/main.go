// Command ffwdreport regenerates the full evaluation — every table and
// figure on every modelled machine — into a directory of CSV files plus a
// Markdown index, mirroring the paper's technical report ("for full
// evaluation results on all four systems, please refer to our technical
// report"). It also runs the backend grid at both measurement layers and
// writes measured-vs-simulated overlay CSVs per structure and machine.
//
// Usage:
//
//	ffwdreport -out report/
//	ffwdreport -out report/ -duration 2e6
//	ffwdreport -out report/ -measure 50ms   # slower, smoother runtime grid
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ffwd/internal/bench"
	"ffwd/internal/runtimebench"
	"ffwd/internal/simarch"
)

func main() {
	var (
		out      = flag.String("out", "report", "output directory")
		duration = flag.Float64("duration", 1e6, "simulated nanoseconds per configuration")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		measure  = flag.Duration("measure", 20*time.Millisecond, "runtime grid measurement window per cell (0 disables the runtime grid)")
	)
	flag.Parse()

	if err := run(*out, *duration, *seed, *measure); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// machineSlug builds a filename-safe machine identifier.
func machineSlug(m simarch.Machine) string {
	s := strings.ToLower(m.Name)
	s = strings.NewReplacer(" ", "", "-", "").Replace(s)
	return s
}

func run(out string, duration float64, seed uint64, measure time.Duration) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	var index strings.Builder
	index.WriteString("# ffwd evaluation report\n\n")
	index.WriteString("Regenerated from the machine models in internal/simarch; ")
	index.WriteString("one CSV per (experiment, machine).\n\n")
	index.WriteString("| experiment | " + machineHeader() + " |\n")
	index.WriteString("|---|" + strings.Repeat("---|", len(simarch.Machines)) + "\n")

	for _, exp := range bench.Experiments() {
		row := []string{exp.ID}
		for _, m := range simarch.Machines {
			fig, err := bench.Run(exp.ID, bench.Options{
				Machine: m, DurationNS: duration, Seed: seed,
			})
			if err != nil {
				return err
			}
			name := fmt.Sprintf("%s-%s.csv", exp.ID, machineSlug(m))
			path := filepath.Join(out, name)
			if err := os.WriteFile(path, []byte(bench.FormatCSV(fig)), 0o644); err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("[csv](%s)", name))
			fmt.Printf("wrote %s\n", path)
		}
		index.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if measure > 0 {
		if err := writeGrid(out, &index, duration, seed, measure); err != nil {
			return err
		}
	}

	indexPath := filepath.Join(out, "README.md")
	if err := os.WriteFile(indexPath, []byte(index.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d experiments × %d machines)\n",
		indexPath, len(bench.Experiments()), len(simarch.Machines))
	return nil
}

// writeGrid runs the backend grid at both layers and writes one overlay
// CSV per (structure, machine): the host's measured series next to that
// machine's simulated series, labels prefixed with their layer.
func writeGrid(out string, index *strings.Builder, duration float64, seed uint64, measure time.Duration) error {
	opts := runtimebench.Options{Duration: measure, Seed: int64(seed)}
	measured, err := runtimebench.Run(opts)
	if err != nil {
		return err
	}
	measuredFigs := figuresByStructure(measured)

	index.WriteString("\nBackend grid (measured on this host vs simulated per machine):\n\n")
	index.WriteString("| structure | " + machineHeader() + " |\n")
	index.WriteString("|---|" + strings.Repeat("---|", len(simarch.Machines)) + "\n")

	structures := []string{}
	for _, c := range measured.Cells {
		if len(structures) == 0 || structures[len(structures)-1] != c.Structure {
			structures = append(structures, c.Structure)
		}
	}
	simFigsByMachine := map[string]map[string]bench.Figure{}
	for _, m := range simarch.Machines {
		sim, err := runtimebench.SimGrid(opts, m, duration)
		if err != nil {
			return err
		}
		simFigsByMachine[m.Name] = figuresByStructure(sim)
	}

	for _, st := range structures {
		row := []string{st}
		for _, m := range simarch.Machines {
			simFigs := simFigsByMachine[m.Name]
			name := fmt.Sprintf("grid-%s-%s.csv", st, machineSlug(m))
			overlay := bench.Overlay(
				fmt.Sprintf("grid-%s-%s", st, machineSlug(m)),
				fmt.Sprintf("%s grid: measured (host) vs simulated (%s)", st, m.Name),
				map[string]bench.Figure{"measured": measuredFigs[st], "sim": simFigs[st]},
				[]string{"measured", "sim"},
			)
			path := filepath.Join(out, name)
			if err := os.WriteFile(path, []byte(bench.FormatCSV(overlay)), 0o644); err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("[csv](%s)", name))
			fmt.Printf("wrote %s\n", path)
		}
		index.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return nil
}

// figuresByStructure indexes a grid report's figures by structure name.
func figuresByStructure(rep runtimebench.Report) map[string]bench.Figure {
	out := map[string]bench.Figure{}
	for _, f := range rep.Figures() {
		st := strings.TrimPrefix(f.ID, rep.Layer+"-")
		out[st] = f
	}
	return out
}

func machineHeader() string {
	names := make([]string, len(simarch.Machines))
	for i, m := range simarch.Machines {
		names[i] = m.Name
	}
	return strings.Join(names, " | ")
}
