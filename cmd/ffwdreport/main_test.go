package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ffwd/internal/simarch"
)

func TestMachineSlug(t *testing.T) {
	for _, tc := range []struct{ name, want string }{
		{"Broadwell", "broadwell"},
		{"Westmere-EX", "westmereex"},
		{"Sandy Bridge-EP", "sandybridgeep"},
		{"Abu Dhabi", "abudhabi"},
	} {
		m, err := simarch.MachineByName(strings.ToLower(strings.Split(tc.name, " ")[0]))
		if err != nil {
			// Only some names map directly; construct by label.
			for _, mm := range simarch.Machines {
				if mm.Name == tc.name {
					m = mm
				}
			}
		}
		if m.Name == "" {
			t.Fatalf("no machine for %q", tc.name)
		}
		if got := machineSlug(m); got != tc.want {
			t.Errorf("machineSlug(%s) = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestRunWritesFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report generation is slow")
	}
	dir := t.TempDir()
	// A tiny horizon keeps the test fast; shapes are irrelevant here.
	if err := run(dir, 5e4, 1, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	idx, err := os.ReadFile(filepath.Join(dir, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"fig9-broadwell.csv", "fig17-abudhabi.csv", "table1-westmereex.csv",
		"grid-counter-broadwell.csv", "grid-set-abudhabi.csv", "grid-queue-westmereex.csv",
	} {
		if !strings.Contains(string(idx), want) {
			t.Errorf("index missing %s", want)
		}
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("file missing: %v", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 18 experiments × 4 machines + 3 grid structures × 4 machines + index.
	if got, want := len(entries), 18*4+3*4+1; got != want {
		t.Fatalf("report has %d files, want %d", got, want)
	}
	// The overlays carry both layers' series.
	overlay, err := os.ReadFile(filepath.Join(dir, "grid-counter-broadwell.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"measured:ffwd", "sim:ffwd", "measured:lock-mcs", "sim:rcl"} {
		if !strings.Contains(string(overlay), want) {
			t.Errorf("overlay missing series %s", want)
		}
	}
	// Every CSV must have a header and at least one data row.
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(string(data), "\n"); lines < 2 {
			t.Errorf("%s has only %d lines", e.Name(), lines)
		}
	}
}
