// Command benchdiff guards the hot-path benchmark baseline. It runs the
// internal/core microbenches several times, takes the best (minimum)
// ns/op per benchmark — the best-of-N protocol that filters shared-host
// noise — and diffs the results against the committed baseline
// (BENCH_core.json), exiting nonzero when any benchmark regresses past
// the noise envelope.
//
// Usage:
//
//	benchdiff [flags]
//	benchdiff -update -history pre_foo   # refresh the baseline, keeping
//	                                     # the old figures as *_ns_per_op
//	benchdiff -input run1.txt -input run2.txt   # diff pre-recorded
//	                                            # `go test -bench` output
//
// The baseline lives in version control precisely so that regressions
// arrive as reviewable diffs: -update rewrites only the measured
// figures, preserving each benchmark's recorded history fields.
//
// Exit status: 0 when every benchmark is inside the envelope, 1 on a
// regression (or a baseline benchmark that no longer runs), 2 on usage
// or measurement errors. Absolute figures on a shared 1-core host drift
// between sessions; same-window comparisons (one benchdiff invocation)
// are the meaningful signal, which is why CI treats this job as
// advisory rather than blocking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// baseline mirrors BENCH_core.json: top-level metadata plus one entry
// per benchmark. Each entry's fields beyond ns_per_op are historical
// figures (e.g. pre_obs_ns_per_op) and ride along untouched.
type baseline struct {
	Description string                        `json:"description"`
	Date        string                        `json:"date"`
	Go          string                        `json:"go"`
	Benchmarks  map[string]map[string]float64 `json:"benchmarks"`
	Notes       string                        `json:"notes"`
}

// stringList collects a repeatable -input flag.
type stringList []string

func (s *stringList) String() string     { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_core.json", "baseline JSON to diff against (and rewrite with -update)")
		runs         = fs.Int("runs", 7, "benchmark repetitions; the per-benchmark minimum is compared")
		benchtime    = fs.String("benchtime", "200000x", "benchtime passed to go test (fixed iteration counts beat duration targets for comparability)")
		benchRE      = fs.String("bench", "Core", "benchmark selection regexp passed to go test")
		pkg          = fs.String("pkg", "./internal/core/", "package holding the benchmarks")
		envelope     = fs.Float64("envelope", 0.25, "relative regression past which the diff fails (0.25 = +25%)")
		update       = fs.Bool("update", false, "rewrite the baseline's ns_per_op figures from this run")
		history      = fs.String("history", "", "with -update, keep each old figure as <history>_ns_per_op")
		inputs       stringList
	)
	fs.Var(&inputs, "input", "pre-recorded `go test -bench` output to diff instead of running (repeatable; minima are taken across all inputs)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var samples []map[string]float64
	if len(inputs) > 0 {
		for _, path := range inputs {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintln(stderr, "benchdiff:", err)
				return 2
			}
			samples = append(samples, parseBenchOutput(string(data)))
		}
	} else {
		for i := 0; i < *runs; i++ {
			out, err := exec.Command("go", "test", "-run=none",
				"-bench="+*benchRE, "-benchtime="+*benchtime, *pkg).CombinedOutput()
			if err != nil {
				fmt.Fprintf(stderr, "benchdiff: go test run %d: %v\n%s", i+1, err, out)
				return 2
			}
			sample := parseBenchOutput(string(out))
			if len(sample) == 0 {
				fmt.Fprintf(stderr, "benchdiff: run %d produced no benchmark lines\n%s", i+1, out)
				return 2
			}
			samples = append(samples, sample)
			fmt.Fprintf(stdout, "run %d/%d: %d benchmarks\n", i+1, *runs, len(sample))
		}
	}
	best := bestOf(samples)
	if len(best) == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmark results")
		return 2
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	report, failed := diff(base, best, *envelope)
	fmt.Fprint(stdout, report)

	if *update {
		refresh(base, best, *history)
		if err := writeBaseline(*baselinePath, base); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "updated %s\n", *baselinePath)
		return 0
	}
	if failed {
		return 1
	}
	return 0
}

// benchLine matches one `go test -bench` result line. The benchmark name
// may carry a -N GOMAXPROCS suffix, stripped for stable keys.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBenchOutput extracts name -> ns/op from go test output. When a
// benchmark appears more than once in one output (-count > 1), the
// minimum wins.
func parseBenchOutput(out string) map[string]float64 {
	m := make(map[string]float64)
	for _, g := range benchLine.FindAllStringSubmatch(out, -1) {
		v, err := strconv.ParseFloat(g[2], 64)
		if err != nil {
			continue
		}
		if old, ok := m[g[1]]; !ok || v < old {
			m[g[1]] = v
		}
	}
	return m
}

// bestOf folds per-run samples into the per-benchmark minimum: on a
// noisy shared host the minimum is the run least disturbed by neighbours
// — the best estimate of the code's true cost.
func bestOf(samples []map[string]float64) map[string]float64 {
	best := make(map[string]float64)
	for _, s := range samples {
		for name, v := range s {
			if old, ok := best[name]; !ok || v < old {
				best[name] = v
			}
		}
	}
	return best
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = make(map[string]map[string]float64)
	}
	return &b, nil
}

// diff renders the comparison table and reports whether any baseline
// benchmark regressed past the envelope or went missing.
func diff(base *baseline, best map[string]float64, envelope float64) (string, bool) {
	names := make([]string, 0, len(best))
	for name := range best {
		names = append(names, name)
	}
	for name := range base.Benchmarks {
		if _, ok := best[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var out []byte
	failed := false
	out = fmt.Appendf(out, "%-44s %10s %10s %8s\n", "benchmark", "base", "best", "delta")
	for _, name := range names {
		measured, ran := best[name]
		entry, known := base.Benchmarks[name]
		switch {
		case !ran:
			failed = true
			out = fmt.Appendf(out, "%-44s %10.1f %10s %8s  MISSING\n", name, entry["ns_per_op"], "-", "-")
		case !known || entry["ns_per_op"] == 0:
			out = fmt.Appendf(out, "%-44s %10s %10.1f %8s  new\n", name, "-", measured, "-")
		default:
			b := entry["ns_per_op"]
			delta := (measured - b) / b
			mark := ""
			if delta > envelope {
				failed = true
				mark = "  REGRESSION"
			}
			out = fmt.Appendf(out, "%-44s %10.1f %10.1f %+7.1f%%%s\n", name, b, measured, 100*delta, mark)
		}
	}
	return string(out), failed
}

// refresh folds measured bests into the baseline: ns_per_op is replaced
// (optionally keeping the old figure under <history>_ns_per_op), other
// recorded fields are preserved, and the date is restamped.
func refresh(base *baseline, best map[string]float64, history string) {
	for name, measured := range best {
		entry := base.Benchmarks[name]
		if entry == nil {
			entry = make(map[string]float64)
			base.Benchmarks[name] = entry
		}
		if old, ok := entry["ns_per_op"]; ok && history != "" {
			entry[history+"_ns_per_op"] = old
		}
		entry["ns_per_op"] = measured
	}
	base.Date = time.Now().Format("2006-01-02")
}

// writeBaseline marshals with the file's existing style: two-space
// indent, one benchmark per line.
func writeBaseline(path string, b *baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
