package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ffwd/internal/core
BenchmarkCoreDelegateArgs/arity0 	  200000	       449.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoreDelegateArgs/arity0 	  200000	       431.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkCoreDelegateNilTracer-8 	  200000	       440.5 ns/op
PASS
ok  	ffwd/internal/core	2.1s
`

func TestParseBenchOutput(t *testing.T) {
	m := parseBenchOutput(sampleOutput)
	if len(m) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(m), m)
	}
	// Repeated lines fold to the minimum; -N GOMAXPROCS suffixes strip.
	if m["BenchmarkCoreDelegateArgs/arity0"] != 431.0 {
		t.Errorf("arity0 = %v, want 431.0 (min of repeats)", m["BenchmarkCoreDelegateArgs/arity0"])
	}
	if m["BenchmarkCoreDelegateNilTracer"] != 440.5 {
		t.Errorf("NilTracer = %v, want 440.5 with suffix stripped", m["BenchmarkCoreDelegateNilTracer"])
	}
}

func TestBestOf(t *testing.T) {
	best := bestOf([]map[string]float64{
		{"A": 500, "B": 900},
		{"A": 450, "C": 100},
		{"A": 700, "B": 880},
	})
	want := map[string]float64{"A": 450, "B": 880, "C": 100}
	for k, v := range want {
		if best[k] != v {
			t.Errorf("best[%s] = %v, want %v", k, best[k], v)
		}
	}
}

func TestDiffEnvelope(t *testing.T) {
	base := &baseline{Benchmarks: map[string]map[string]float64{
		"BenchmarkFast":   {"ns_per_op": 400},
		"BenchmarkSlower": {"ns_per_op": 400},
		"BenchmarkGone":   {"ns_per_op": 100},
	}}
	report, failed := diff(base, map[string]float64{
		"BenchmarkFast":   380, // improvement
		"BenchmarkSlower": 520, // +30%: past the 25% envelope
		"BenchmarkNew":    42,  // unknown to the baseline
	}, 0.25)
	if !failed {
		t.Fatal("diff passed despite a 30% regression and a missing benchmark")
	}
	for _, want := range []string{"REGRESSION", "MISSING", "new", "-5.0%", "+30.0%"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	// Inside the envelope, and with every baseline benchmark measured,
	// the diff passes.
	delete(base.Benchmarks, "BenchmarkGone")
	_, failed = diff(base, map[string]float64{
		"BenchmarkFast":   420, // +5%
		"BenchmarkSlower": 380,
	}, 0.25)
	if failed {
		t.Fatal("diff failed with all deltas inside the envelope")
	}
}

func writeTempBaseline(t *testing.T, b *baseline) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_core.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunWithInputs drives the whole command against pre-recorded bench
// output: regression detection and the exit code contract.
func TestRunWithInputs(t *testing.T) {
	basePath := writeTempBaseline(t, &baseline{
		Benchmarks: map[string]map[string]float64{
			"BenchmarkCoreDelegateArgs/arity0": {"ns_per_op": 300, "pre_obs_ns_per_op": 390},
			"BenchmarkCoreDelegateNilTracer":   {"ns_per_op": 430},
		},
	})
	input := filepath.Join(t.TempDir(), "run1.txt")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}

	// arity0 measures 431 vs baseline 300: +44%, past the envelope.
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-input", input}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (regression)\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report missing REGRESSION:\n%s", out.String())
	}

	// A wider envelope passes the same measurements.
	out.Reset()
	if code := run([]string{"-baseline", basePath, "-input", input, "-envelope", "0.5"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 at envelope 0.5\n%s%s", code, out.String(), errb.String())
	}
}

// TestRunUpdate: -update rewrites ns_per_op, keeps history fields, and
// archives the old figure under the -history name.
func TestRunUpdate(t *testing.T) {
	basePath := writeTempBaseline(t, &baseline{
		Notes: "keep me",
		Benchmarks: map[string]map[string]float64{
			"BenchmarkCoreDelegateArgs/arity0": {"ns_per_op": 300, "pre_obs_ns_per_op": 390},
		},
	})
	input := filepath.Join(t.TempDir(), "run1.txt")
	if err := os.WriteFile(input, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-baseline", basePath, "-input", input, "-update", "-history", "pre_wc"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errb.String())
	}
	got, err := loadBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	e := got.Benchmarks["BenchmarkCoreDelegateArgs/arity0"]
	if e["ns_per_op"] != 431.0 || e["pre_wc_ns_per_op"] != 300 || e["pre_obs_ns_per_op"] != 390 {
		t.Errorf("updated entry = %v, want ns_per_op 431, pre_wc 300, pre_obs 390", e)
	}
	ne := got.Benchmarks["BenchmarkCoreDelegateNilTracer"]
	if ne["ns_per_op"] != 440.5 {
		t.Errorf("new benchmark entry = %v, want ns_per_op 440.5", ne)
	}
	if got.Notes != "keep me" {
		t.Errorf("Notes = %q, want preserved", got.Notes)
	}
	if got.Date == "" {
		t.Error("Date not restamped")
	}
}
