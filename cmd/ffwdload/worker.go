package main

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ffwd/internal/stats"
	"ffwd/internal/wireproto"
)

// This file is the open-loop worker core. Each connection runs one
// sender and one reader. The sender paces requests on a fixed schedule
// (next = next + interval) and never skips a slot: when the server or
// the outstanding cap falls behind, requests queue against their
// *scheduled* send time, and latency is measured from that schedule.
// That is the coordinated-omission-safe discipline — a stalled server
// inflates the recorded tail instead of silently thinning the load.

// loadConfig parameterizes one load phase against one frontend.
type loadConfig struct {
	addr        string
	proto       string // "binary" or "text"
	conns       int
	rate        float64 // total target ops/s across conns (0 = closed loop)
	duration    time.Duration
	warmup      time.Duration
	getPct      int
	ttlSetPct   int    // percent of ops that are TTL SETs (setx)
	touchPct    int    // percent of ops that are TOUCHes
	ttl         uint64 // TTL attached to setx/touch, in server ticks (ms)
	keys        uint64
	outstanding int // per-conn in-flight cap
	crc         bool
}

// loadResult aggregates one phase. Latencies are nanoseconds from the
// scheduled send time to response decode.
type loadResult struct {
	Ops       uint64 // completions recorded after warmup
	Errors    uint64 // ERROR/BUSY replies (recorded window)
	Stalls    uint64 // sends that blocked on the outstanding cap
	Elapsed   time.Duration
	Hist      stats.Histogram
	OpsPerSec float64
}

func (r *loadResult) quantileUS(q float64) float64 { return r.Hist.Quantile(q) / 1e3 }

// schedRing holds scheduled send times for in-flight binary requests,
// indexed by request ID. It is deliberately much larger than the
// outstanding cap so one slow response cannot collide with the IDs that
// cycle past it. Slots are atomics: the reader thread loads them
// without locking the sender.
const schedRingBits = 15 // 32768 slots

type schedRing struct {
	slots [1 << schedRingBits]atomic.Int64
}

func (s *schedRing) put(id uint64, ns int64) { s.slots[id&(1<<schedRingBits-1)].Store(ns) }
func (s *schedRing) get(id uint64) int64     { return s.slots[id&(1<<schedRingBits-1)].Load() }

// xorshift is the per-conn key/op PRNG — deterministic per seed so two
// A/B phases issue statistically identical workloads.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// runLoad executes one phase: conns workers against cfg.addr, results
// merged. An error means the phase could not run at all (dial failure);
// per-op errors are counted, not fatal.
func runLoad(cfg loadConfig) (*loadResult, error) {
	if cfg.conns < 1 {
		cfg.conns = 1
	}
	if cfg.outstanding < 1 {
		cfg.outstanding = 1
	}
	interval := time.Duration(0)
	if cfg.rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.conns) / cfg.rate)
	}

	results := make([]*loadResult, cfg.conns)
	errs := make([]error, cfg.conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &loadResult{}
			var err error
			switch cfg.proto {
			case "binary":
				err = runBinaryConn(cfg, interval, uint64(i+1), r)
			case "text":
				err = runTextConn(cfg, interval, uint64(i+1), r)
			default:
				err = fmt.Errorf("unknown proto %q", cfg.proto)
			}
			results[i], errs[i] = r, err
		}(i)
	}
	wg.Wait()

	total := &loadResult{Elapsed: time.Since(start)}
	for i, r := range results {
		if errs[i] != nil {
			return nil, fmt.Errorf("conn %d: %w", i, errs[i])
		}
		total.Ops += r.Ops
		total.Errors += r.Errors
		total.Stalls += r.Stalls
		total.Hist.Merge(&r.Hist)
	}
	window := cfg.duration - cfg.warmup
	if window <= 0 {
		window = cfg.duration
	}
	total.OpsPerSec = float64(total.Ops) / window.Seconds()
	return total, nil
}

// Workload op kinds produced by genOp.
const (
	opGet = iota
	opSet
	opSetTTL
	opTouch
)

// genOp picks the next op from the workload mix. A single r%100 draw is
// partitioned get | setx | touch | set, so the mix is deterministic per
// seed and two phases with equal flags issue identical op sequences.
func genOp(rng *xorshift, cfg *loadConfig) (kind int, key, val uint64) {
	r := rng.next()
	key = (r >> 32) % cfg.keys
	c := int(r % 100)
	switch {
	case c < cfg.getPct:
		return opGet, key, 0
	case c < cfg.getPct+cfg.ttlSetPct:
		return opSetTTL, key, key + 1
	case c < cfg.getPct+cfg.ttlSetPct+cfg.touchPct:
		return opTouch, key, 0
	default:
		return opSet, key, key + 1
	}
}

// runBinaryConn drives one binary-protocol connection: pipelined
// requests under the outstanding cap, out-of-order completions matched
// back to their schedule by request ID.
func runBinaryConn(cfg loadConfig, interval time.Duration, seed uint64, res *loadResult) error {
	nc, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return err
	}
	defer nc.Close()

	sched := &schedRing{}
	sem := make(chan struct{}, cfg.outstanding)
	warmupEnd := time.Now().Add(cfg.warmup)
	deadline := time.Now().Add(cfg.duration)

	var sent, done atomic.Uint64
	senderDone := make(chan struct{})
	readerDone := make(chan struct{})

	// Reader: decode frames as they arrive, attribute each to its
	// scheduled send time, release the in-flight slot.
	go func() {
		defer close(readerDone)
		rbuf := make([]byte, 64<<10)
		rlen := 0
		var resp wireproto.Response
		for {
			for {
				body, n, serr := wireproto.Split(rbuf[:rlen])
				if serr != nil {
					if errors.Is(serr, wireproto.ErrShort) {
						break
					}
					return // framing lost; connection is useless
				}
				now := time.Now()
				if derr := wireproto.DecodeResponse(body, &resp); derr == nil {
					// A zero schedule slot marks an unsolicited frame
					// (e.g. an admission BUSY); it attributes to nothing
					// and holds no in-flight slot.
					if s := sched.get(resp.ID); s > 0 {
						lat := now.UnixNano() - s
						if lat > 0 && now.After(warmupEnd) {
							res.Hist.Record(uint64(lat))
							res.Ops++
							if resp.Type == wireproto.RespError || resp.Type == wireproto.RespBusy {
								res.Errors++
							}
						}
						done.Add(1)
						select {
						case <-sem:
						default:
						}
					}
				}
				rlen = copy(rbuf, rbuf[n:rlen])
			}
			nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, rerr := nc.Read(rbuf[rlen:])
			if rerr != nil {
				return
			}
			rlen += n
		}
	}()

	// Sender: paced open loop.
	go func() {
		defer close(senderDone)
		w := bufio.NewWriterSize(nc, 32<<10)
		rng := xorshift(seed*0x9E3779B97F4A7C15 + 1)
		var req wireproto.Request
		if cfg.crc {
			req.Flags = wireproto.FlagCRC
		}
		var frame []byte
		id := uint64(0)
		next := time.Now()
		for {
			now := time.Now()
			if now.After(deadline) {
				break
			}
			if interval > 0 {
				if now.Before(next) {
					// Ahead of schedule: push buffered frames out, then
					// sleep to the next slot.
					w.Flush()
					time.Sleep(next.Sub(now))
				}
			} else {
				next = now
			}
			select {
			case sem <- struct{}{}:
			default:
				// Outstanding cap reached at the scheduled instant:
				// flush and block. The slot keeps its scheduled time, so
				// the wait shows up in the recorded latency.
				res.Stalls++
				w.Flush()
				sem <- struct{}{}
			}
			id++
			kind, key, val := genOp(&rng, &cfg)
			req.ID = id
			req.Val, req.TTL = 0, 0
			switch kind {
			case opGet:
				req.Op, req.Key = wireproto.OpGet, key
			case opSetTTL:
				req.Op, req.Key, req.Val, req.TTL = wireproto.OpSetTTL, key, val, cfg.ttl
			case opTouch:
				req.Op, req.Key, req.TTL = wireproto.OpTouch, key, cfg.ttl
			default:
				req.Op, req.Key, req.Val = wireproto.OpSet, key, val
			}
			sched.put(id, next.UnixNano())
			frame = wireproto.AppendRequest(frame[:0], &req)
			w.Write(frame)
			if interval > 0 {
				next = next.Add(interval)
			} else if w.Buffered() >= 16<<10 {
				w.Flush()
			}
		}
		w.Flush()
		sent.Store(id)
	}()

	<-senderDone
	// Drain: give in-flight requests a grace period to complete.
	drainUntil := time.Now().Add(2 * time.Second)
	for done.Load() < sent.Load() && time.Now().Before(drainUntil) {
		select {
		case <-readerDone:
			return nil
		case <-time.After(time.Millisecond):
		}
	}
	nc.Close()
	<-readerDone
	return nil
}

// runTextConn drives one text-protocol connection. Text replies are
// strictly in submission order, so the in-flight schedule is a FIFO
// channel whose capacity doubles as the outstanding cap.
func runTextConn(cfg loadConfig, interval time.Duration, seed uint64, res *loadResult) error {
	nc, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		return err
	}
	defer nc.Close()

	pend := make(chan int64, cfg.outstanding)
	warmupEnd := time.Now().Add(cfg.warmup)
	deadline := time.Now().Add(cfg.duration)

	var sent, done atomic.Uint64
	senderDone := make(chan struct{})
	readerDone := make(chan struct{})

	go func() {
		defer close(readerDone)
		r := bufio.NewReaderSize(nc, 64<<10)
		for {
			nc.SetReadDeadline(time.Now().Add(5 * time.Second))
			line, rerr := r.ReadString('\n')
			if rerr != nil {
				return
			}
			now := time.Now()
			var schedNS int64
			select {
			case schedNS = <-pend:
			case <-time.After(5 * time.Second):
				// A reply with no pending request (e.g. an admission
				// BUSY or idle-timeout notice): nothing to attribute.
				return
			}
			lat := now.UnixNano() - schedNS
			if lat > 0 && now.After(warmupEnd) {
				res.Hist.Record(uint64(lat))
				res.Ops++
				if strings.HasPrefix(line, "ERROR") || strings.HasPrefix(line, "BUSY") {
					res.Errors++
				}
			}
			done.Add(1)
		}
	}()

	go func() {
		defer close(senderDone)
		w := bufio.NewWriterSize(nc, 32<<10)
		rng := xorshift(seed*0x9E3779B97F4A7C15 + 1)
		var line []byte
		id := uint64(0)
		next := time.Now()
		for {
			now := time.Now()
			if now.After(deadline) {
				break
			}
			if interval > 0 {
				if now.Before(next) {
					w.Flush()
					time.Sleep(next.Sub(now))
				}
			} else {
				next = now
			}
			kind, key, val := genOp(&rng, &cfg)
			switch kind {
			case opGet:
				line = append(line[:0], "get "...)
				line = appendUint(line, key)
			case opSetTTL:
				line = append(line[:0], "setx "...)
				line = appendUint(line, key)
				line = append(line, ' ')
				line = appendUint(line, val)
				line = append(line, ' ')
				line = appendUint(line, cfg.ttl)
			case opTouch:
				line = append(line[:0], "touch "...)
				line = appendUint(line, key)
				line = append(line, ' ')
				line = appendUint(line, cfg.ttl)
			default:
				line = append(line[:0], "set "...)
				line = appendUint(line, key)
				line = append(line, ' ')
				line = appendUint(line, val)
			}
			line = append(line, '\n')
			select {
			case pend <- next.UnixNano():
			default:
				res.Stalls++
				w.Flush()
				pend <- next.UnixNano()
			}
			id++
			w.Write(line)
			if interval > 0 {
				next = next.Add(interval)
			} else if w.Buffered() >= 16<<10 {
				w.Flush()
			}
		}
		w.Flush()
		sent.Store(id)
	}()

	<-senderDone
	drainUntil := time.Now().Add(2 * time.Second)
	for done.Load() < sent.Load() && time.Now().Before(drainUntil) {
		select {
		case <-readerDone:
			return nil
		case <-time.After(time.Millisecond):
		}
	}
	nc.Close()
	<-readerDone
	return nil
}

func appendUint(b []byte, v uint64) []byte {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}
