package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// This file is the loadtest smoke harness behind `make loadtest`: it
// builds the real ffwdserve binary, serves both protocols on ephemeral
// ports, and drives them with the in-process load core plus the real
// ffwdload binary. The env-gated A/B test is also the producer of
// BENCH_frontend.json.

var (
	serveBin string
	loadBin  string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ffwdload-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	serveBin = filepath.Join(dir, "ffwdserve")
	loadBin = filepath.Join(dir, "ffwdload")
	for bin, pkg := range map[string]string{serveBin: "./cmd/ffwdserve", loadBin: "./cmd/ffwdload"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: build %s: %v\n%s", pkg, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

var (
	textAddrRE = regexp.MustCompile(`backend listening on (\S+)`)
	binAddrRE  = regexp.MustCompile(`binary frontend listening on (\S+)`)
)

// startServer runs ffwdserve -proto both on ephemeral ports and returns
// the two resolved addresses scraped from its startup log.
func startServer(t *testing.T, extra ...string) (textAddr, binAddr string) {
	t.Helper()
	args := append([]string{
		"-proto", "both",
		"-addr", "127.0.0.1:0",
		"-binary-addr", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(serveBin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})

	sc := bufio.NewScanner(stderr)
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for textAddr == "" || binAddr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("ffwdserve exited before announcing listeners (text=%q bin=%q)", textAddr, binAddr)
			}
			if m := textAddrRE.FindStringSubmatch(line); m != nil {
				textAddr = m[1]
			}
			if m := binAddrRE.FindStringSubmatch(line); m != nil {
				binAddr = m[1]
			}
		case <-deadline:
			t.Fatal("timed out waiting for ffwdserve listeners")
		}
	}
	// Keep draining stderr so the server never blocks on a full pipe.
	go func() {
		for range lines {
		}
	}()
	return textAddr, binAddr
}

// TestLoadSmoke is the `make loadtest` gate: a short open-loop run
// against each frontend must complete operations and attribute tail
// latency, or the serving path is broken.
func TestLoadSmoke(t *testing.T) {
	textAddr, binAddr := startServer(t)
	for _, tc := range []struct {
		proto, addr string
	}{
		{"binary", binAddr},
		{"text", textAddr},
	} {
		t.Run(tc.proto, func(t *testing.T) {
			res, err := runLoad(loadConfig{
				addr:        tc.addr,
				proto:       tc.proto,
				conns:       2,
				rate:        4000,
				duration:    1200 * time.Millisecond,
				warmup:      200 * time.Millisecond,
				getPct:      80,
				ttlSetPct:   10,
				touchPct:    5,
				ttl:         60000,
				keys:        1024,
				outstanding: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("zero operations completed")
			}
			if res.Hist.Count() == 0 {
				t.Fatal("no latencies recorded: p99 unattributed")
			}
			if p99 := res.quantileUS(0.99); p99 <= 0 {
				t.Fatalf("p99 = %v µs, want > 0", p99)
			}
			t.Logf("%s: %.0f ops/s p50=%.1fµs p99=%.1fµs (ops=%d errors=%d stalls=%d)",
				tc.proto, res.OpsPerSec, res.quantileUS(0.5), res.quantileUS(0.99),
				res.Ops, res.Errors, res.Stalls)
		})
	}
}

// TestLoadBinarySmoke runs the real ffwdload binary end to end: exit 0
// with a parseable report against a live server, nonzero against a dead
// port.
func TestLoadBinarySmoke(t *testing.T) {
	_, binAddr := startServer(t)
	out, err := exec.Command(loadBin,
		"-addr", binAddr,
		"-conns", "1",
		"-rate", "2000",
		"-duration", "1s",
		"-warmup", "200ms",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ffwdload failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ops/s") {
		t.Fatalf("report missing throughput:\n%s", out)
	}

	if out, err := exec.Command(loadBin,
		"-addr", "127.0.0.1:1", "-duration", "1s", "-warmup", "1ms",
	).CombinedOutput(); err == nil {
		t.Fatalf("ffwdload against a dead port exited zero:\n%s", out)
	}
}

// TestFrontendAB is the producer of BENCH_frontend.json: a same-window
// closed-loop A/B of the binary dataplane against the text frontend at
// equal connection count. Gated behind FFWD_LOADTEST_AB=1 because it is
// a multi-second saturation benchmark, not a correctness test; the
// acceptance bar (binary ≥ 2x text ops/s) is asserted when it runs.
func TestFrontendAB(t *testing.T) {
	if os.Getenv("FFWD_LOADTEST_AB") == "" {
		t.Skip("set FFWD_LOADTEST_AB=1 to run the frontend A/B benchmark")
	}
	textAddr, binAddr := startServer(t)
	outPath := filepath.Join("..", "..", "BENCH_frontend.json")
	out, err := exec.Command(loadBin,
		"-addr", binAddr,
		"-ab-text-addr", textAddr,
		"-conns", "2",
		"-duration", "5s",
		"-warmup", "1s",
		"-outstanding", "64",
		"-format", "json",
		"-out", outPath,
	).CombinedOutput()
	if err != nil {
		t.Fatalf("ffwdload A/B failed: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`throughput ratio: ([0-9.]+)x`).FindStringSubmatch(string(out))
	if m == nil {
		t.Fatalf("no throughput ratio in output:\n%s", out)
	}
	var ratio float64
	fmt.Sscanf(m[1], "%f", &ratio)
	t.Logf("binary/text throughput ratio: %.2fx", ratio)
	if ratio < 2.0 {
		t.Fatalf("binary frontend is %.2fx text, want >= 2x", ratio)
	}
}
