// Command ffwdload is an open-loop, coordinated-omission-safe load
// generator for ffwdserve. It drives either protocol — the binary
// dataplane (-proto binary) or the newline text protocol (-proto text)
// — with a fixed-rate schedule: requests are issued on their scheduled
// instants (next = next + interval), never skipped, and every latency
// is measured from the *scheduled* send time. A server that stalls
// therefore inflates the recorded tail instead of quietly receiving
// less load, which is what a closed-loop "send, wait, send" client gets
// wrong.
//
// With -rate 0 the generator runs a closed loop bounded only by
// -outstanding, which measures peak throughput rather than latency
// under a fixed offered load.
//
// The workload is a uniform key-space GET/SET mix (-get percent GETs,
// -keys keys), deterministic per connection, so two phases against two
// frontends issue statistically identical traffic. -ttl-set and -touch
// carve TTL SETs (setx) and TOUCHes out of the non-GET budget, each
// carrying the -ttl-ms relative TTL — the deterministic TTL mix for
// exercising server-owned expiry under load.
//
// -ab-text-addr runs a second, identically configured phase against a
// text-protocol listener after the main binary phase — the same-window
// A/B behind BENCH_frontend.json. The report is a bench.Figure: one
// series per frontend, points at X=1..4 for ops/s, p50, p99, and p99.9
// (µs, see XLabel).
//
// ffwdload exits nonzero when a phase completes zero operations or
// records no latencies — a smoke run that "passes" without measuring
// anything is a failure.
//
// Usage:
//
//	ffwdserve -proto binary -addr :11212 &
//	ffwdload -addr :11212 -rate 20000 -duration 10s
//
//	ffwdserve -proto both -addr :11211 -binary-addr :11212 &
//	ffwdload -addr :11212 -ab-text-addr :11211 -format json -out BENCH_frontend.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ffwd/internal/bench"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:11212", "target address (binary frontend by default)")
		proto       = flag.String("proto", "binary", "protocol to speak: binary or text")
		conns       = flag.Int("conns", 4, "concurrent connections")
		rate        = flag.Float64("rate", 0, "total offered ops/s across connections (0 = closed loop at -outstanding depth)")
		duration    = flag.Duration("duration", 10*time.Second, "measurement phase length, warmup included")
		warmup      = flag.Duration("warmup", 1*time.Second, "initial slice excluded from the recorded window")
		getPct      = flag.Int("get", 90, "percent of ops that are GETs (rest are SETs)")
		ttlSetPct   = flag.Int("ttl-set", 0, "percent of ops that are TTL SETs (setx), taken from the SET budget")
		touchPct    = flag.Int("touch", 0, "percent of ops that are TOUCHes, taken from the SET budget")
		ttlMS       = flag.Uint64("ttl-ms", 60000, "relative TTL carried by setx/touch ops, in server ticks (ms)")
		keys        = flag.Uint64("keys", 4096, "uniform key-space size")
		outstanding = flag.Int("outstanding", 64, "per-connection in-flight cap")
		crc         = flag.Bool("crc", false, "request CRC-framed responses (binary protocol)")
		format      = flag.String("format", "text", "report format: text or json (bench.Figure)")
		out         = flag.String("out", "", "write the report here instead of stdout")
		abTextAddr  = flag.String("ab-text-addr", "", "after the main phase, run an identical phase against this text-protocol address and report both")
	)
	flag.Parse()
	log.SetFlags(0)

	if *getPct < 0 || *getPct > 100 {
		log.Fatal("ffwdload: -get must be 0..100")
	}
	if *ttlSetPct < 0 || *touchPct < 0 || *getPct+*ttlSetPct+*touchPct > 100 {
		log.Fatal("ffwdload: -get + -ttl-set + -touch must not exceed 100")
	}
	if *keys == 0 {
		log.Fatal("ffwdload: -keys must be positive")
	}
	if *warmup >= *duration {
		log.Fatal("ffwdload: -warmup must be shorter than -duration")
	}
	cfg := loadConfig{
		addr:        *addr,
		proto:       *proto,
		conns:       *conns,
		rate:        *rate,
		duration:    *duration,
		warmup:      *warmup,
		getPct:      *getPct,
		ttlSetPct:   *ttlSetPct,
		touchPct:    *touchPct,
		ttl:         *ttlMS,
		keys:        *keys,
		outstanding: *outstanding,
		crc:         *crc,
	}

	type phase struct {
		label string
		res   *loadResult
	}
	var phases []phase

	log.Printf("ffwdload: %s phase: %s addr=%s conns=%d rate=%s duration=%v",
		cfg.proto, describeRate(cfg.rate), cfg.addr, cfg.conns, describeRate(cfg.rate), cfg.duration)
	res, err := runLoad(cfg)
	if err != nil {
		log.Fatalf("ffwdload: %v", err)
	}
	phases = append(phases, phase{cfg.proto, res})

	if *abTextAddr != "" {
		tcfg := cfg
		tcfg.addr = *abTextAddr
		tcfg.proto = "text"
		tcfg.crc = false
		log.Printf("ffwdload: text phase: addr=%s conns=%d rate=%s duration=%v",
			tcfg.addr, tcfg.conns, describeRate(tcfg.rate), tcfg.duration)
		tres, terr := runLoad(tcfg)
		if terr != nil {
			log.Fatalf("ffwdload: text phase: %v", terr)
		}
		phases = append(phases, phase{"text", tres})
	}

	// Validation: a run that measured nothing must not look like a pass.
	exitCode := 0
	for _, p := range phases {
		if p.res.Ops == 0 {
			log.Printf("ffwdload: FAIL: %s phase completed zero operations", p.label)
			exitCode = 1
		} else if p.res.Hist.Count() == 0 {
			log.Printf("ffwdload: FAIL: %s phase recorded no latencies (p99 unattributed)", p.label)
			exitCode = 1
		}
	}

	fig := bench.Figure{
		ID:     "frontend-load",
		Title:  "ffwdserve frontend load: throughput and CO-safe latency",
		XLabel: "metric (1=ops/s, 2=p50 µs, 3=p99 µs, 4=p99.9 µs)",
		YLabel: "value",
	}
	for _, p := range phases {
		fig.Series = append(fig.Series, bench.Series{Label: p.label, Points: []bench.Point{
			{X: 1, Y: p.res.OpsPerSec},
			{X: 2, Y: p.res.quantileUS(0.50)},
			{X: 3, Y: p.res.quantileUS(0.99)},
			{X: 4, Y: p.res.quantileUS(0.999)},
		}})
	}

	var report string
	if *format == "json" {
		report = bench.FormatJSON(fig)
	} else {
		for _, p := range phases {
			report += fmt.Sprintf("%-8s %12.0f ops/s  p50=%8.1fµs  p99=%8.1fµs  p99.9=%8.1fµs  ops=%d errors=%d stalls=%d\n",
				p.label, p.res.OpsPerSec, p.res.quantileUS(0.50), p.res.quantileUS(0.99),
				p.res.quantileUS(0.999), p.res.Ops, p.res.Errors, p.res.Stalls)
		}
	}
	if len(phases) == 2 && phases[1].res.OpsPerSec > 0 {
		log.Printf("ffwdload: binary/text throughput ratio: %.2fx",
			phases[0].res.OpsPerSec/phases[1].res.OpsPerSec)
	}

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			log.Fatalf("ffwdload: %v", err)
		}
		log.Printf("ffwdload: wrote %s", *out)
	} else {
		fmt.Print(report)
	}
	os.Exit(exitCode)
}

func describeRate(r float64) string {
	if r <= 0 {
		return "closed-loop"
	}
	return fmt.Sprintf("%.0f ops/s", r)
}
