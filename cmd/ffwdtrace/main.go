// Command ffwdtrace loads a delegation lifecycle trace (Chrome trace
// JSON, as written by ffwdserve -trace, ffwdbench -trace-dir, or
// obs.WriteChrome) and prints the per-operation phase-latency breakdown:
// how long operations spent waiting in their request slot, being
// executed by the server, and waiting for the response to be observed.
//
// Usage:
//
//	ffwdtrace trace.json
//	ffwdtrace -csv trace.json
//
// The trace file itself remains loadable in any Chrome trace viewer
// (chrome://tracing, Perfetto); this command is the terminal-side view.
// It exits nonzero when the trace attributes zero complete operations —
// a trace full of events that never pair up is a capture bug, not a
// quiet success.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ffwd/internal/obs"
)

func main() {
	csv := flag.Bool("csv", false, "emit the phase breakdown as CSV instead of an aligned table")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ffwdtrace [-csv] <trace.json>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *csv, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ffwdtrace:", err)
		os.Exit(1)
	}
}

func run(path string, csv bool, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	evs, err := obs.ReadChrome(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s: no delegation events", path)
	}
	bd := obs.Attribute(evs)
	if csv {
		fmt.Fprint(w, bd.CSV())
	} else {
		fmt.Fprintf(w, "%s: %d events, %d complete ops, %d partial\n", path, bd.Events, bd.Ops, bd.Partial)
		printKinds(w, evs)
		fmt.Fprint(w, bd.Table())
	}
	if bd.Ops == 0 {
		return fmt.Errorf("%s: %d events but zero complete operations attributed", path, len(evs))
	}
	return nil
}

// printKinds summarizes the event mix, sorted by kind so the output is
// stable for the smoke test.
func printKinds(w io.Writer, evs []obs.Event) {
	counts := obs.CountByKind(evs)
	kinds := make([]obs.Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-20s %d\n", k, counts[k])
	}
	fmt.Fprintln(w)
}
