package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ffwd/internal/core"
	"ffwd/internal/obs"
)

// writeCapturedTrace drives a traced delegation server and writes the
// snapshot as Chrome trace JSON — the same shape ffwdserve -trace and
// ffwdbench -trace-dir produce.
func writeCapturedTrace(t *testing.T, path string) {
	t.Helper()
	sink := obs.NewTraceSink(obs.SinkConfig{Clients: 4})
	srv := core.NewServer(core.Config{MaxClients: 4, Trace: sink})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	fid := srv.Register(func(a *[core.MaxArgs]uint64) uint64 { return a[0] + 1 })
	c, err := srv.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Delegate1(fid, uint64(i))
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteChrome(f, sink.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func TestRunPrintsPhaseTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	writeCapturedTrace(t, path)

	var out strings.Builder
	if err := run(path, false, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"100 complete ops", "client-issue", "server-execute",
		"slot-wait", "service", "response-wait", "total", "p99_ns",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	if err := run(path, true, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "phase,count,") {
		t.Errorf("CSV output missing header:\n%s", out.String())
	}
}

func TestRunRejectsEmptyAndUnmatched(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(empty, false, &strings.Builder{}); err == nil {
		t.Error("want error for event-free trace")
	}

	// Issue events with no matching execute/respond/complete: loadable,
	// but zero operations attribute — that must be a hard error, not a
	// blank table.
	partial := filepath.Join(dir, "partial.json")
	f, err := os.Create(partial)
	if err != nil {
		t.Fatal(err)
	}
	evs := []obs.Event{
		{TS: 10, Kind: obs.KindClientIssue, Slot: 0, Arg: 1},
		{TS: 20, Kind: obs.KindClientIssue, Slot: 1, Arg: 1},
	}
	if err := obs.WriteChrome(f, evs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(partial, false, &strings.Builder{}); err == nil {
		t.Error("want error when zero ops attribute")
	}

	if err := run(filepath.Join(dir, "missing.json"), false, &strings.Builder{}); err == nil {
		t.Error("want error for missing file")
	}
}
