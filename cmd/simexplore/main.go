// Command simexplore runs the ablation studies DESIGN.md calls out: it
// isolates each of ffwd's design choices on the simulated machine and
// reports what removing it costs.
//
// Usage:
//
//	simexplore                   # all ablations on Broadwell
//	simexplore -machine abudhabi
package main

import (
	"flag"
	"fmt"
	"os"

	"ffwd/internal/simarch"
	"ffwd/internal/simsync"
)

func main() {
	machine := flag.String("machine", "broadwell", "machine model")
	clients := flag.Int("clients", 120, "client threads")
	flag.Parse()

	m, err := simarch.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cs := simsync.EmptyLoop(m, 1)
	base := simsync.DelegSimConfig{
		Machine: m, Method: simsync.FFWD, Clients: *clients, Servers: 1,
		DelayPauses: 25, CS: cs, Seed: 1,
	}

	run := func(name string, mutate func(*simsync.DelegSimConfig)) {
		cfg := base
		mutate(&cfg)
		r := simsync.SimulateDelegation(cfg)
		ref := simsync.SimulateDelegation(base)
		fmt.Printf("%-38s %8.1f Mops  (baseline %.1f, %+5.1f%%)\n",
			name, r.Mops, ref.Mops, 100*(r.Mops-ref.Mops)/ref.Mops)
	}

	fmt.Printf("ffwd design ablations on %s, %d clients, 1-iteration CS\n\n", m.Name, *clients)
	run("baseline (all optimizations on)", func(*simsync.DelegSimConfig) {})
	run("1. response write-through (no batching)", func(c *simsync.DelegSimConfig) {
		c.WriteThrough = true
	})
	run("2. server-side lock per request", func(c *simsync.DelegSimConfig) {
		c.ServerLockNS = 20
	})
	run("3. private response line per client", func(c *simsync.DelegSimConfig) {
		c.PrivateResponses = true
	})
	run("4. RCL-style request context+lock", func(c *simsync.DelegSimConfig) {
		c.Method = simsync.RCL
	})
	run("5. NUMA-oblivious line allocation", func(c *simsync.DelegSimConfig) {
		c.RemoteRequestLines = true
	})

	fmt.Printf("\nlatency-bound regime (15 clients, where per-message costs dominate):\n")
	lat := base
	lat.Clients = 15
	runLat := func(name string, mutate func(*simsync.DelegSimConfig)) {
		cfg := lat
		mutate(&cfg)
		r := simsync.SimulateDelegation(cfg)
		ref := simsync.SimulateDelegation(lat)
		fmt.Printf("%-38s %8.1f Mops  (baseline %.1f, %+5.1f%%)\n",
			name, r.Mops, ref.Mops, 100*(r.Mops-ref.Mops)/ref.Mops)
	}
	runLat("5b. NUMA-oblivious line allocation", func(c *simsync.DelegSimConfig) {
		c.RemoteRequestLines = true
	})

	fmt.Printf("\n6. store-buffer depth sweep (2 dependent miss stores per request):\n")
	for _, depth := range []int{1, 2, 4, 8, 16, 32, 42, 64} {
		mm := m
		mm.StoreBufferEntries = depth
		cfg := base
		cfg.Machine = mm
		cfg.CS = simsync.CS{BaseNS: 25, ServerMissStores: 2,
			MissStoreLatNS: m.RemoteLLCNS, MissStoreWindow: depth}
		r := simsync.SimulateDelegation(cfg)
		fmt.Printf("   depth %-3d %8.1f Mops  stall %5.1f%%\n", depth, r.Mops, r.StallPct)
	}
}
