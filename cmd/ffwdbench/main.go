// Command ffwdbench regenerates the tables and figures of the ffwd paper
// (SOSP 2017) from the machine models in internal/simarch.
//
// Usage:
//
//	ffwdbench -list
//	ffwdbench -exp fig9 -machine broadwell
//	ffwdbench -exp all
//	ffwdbench -exp fig14 -duration 2e6 -seed 7
//
// Output is one aligned text table per experiment: the same rows/series
// the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"

	"ffwd/internal/bench"
	"ffwd/internal/simarch"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (table1, fig1..fig18, or 'all')")
		machine  = flag.String("machine", "broadwell", "machine model: broadwell, westmere, sandybridge, abudhabi")
		duration = flag.Float64("duration", 1e6, "simulated nanoseconds per configuration")
		seed     = flag.Uint64("seed", 1, "deterministic simulation seed")
		list     = flag.Bool("list", false, "list experiments and exit")
		format   = flag.String("format", "table", "output format: table, csv or plot")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> (or -exp all)")
			os.Exit(2)
		}
		return
	}

	m, err := simarch.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := bench.Options{Machine: m, DurationNS: *duration, Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.IDs()
	}
	for _, id := range ids {
		f, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Print(bench.FormatCSV(f))
		case "plot":
			fmt.Println(bench.FormatPlot(f, 72, 20))
		default:
			fmt.Println(bench.Format(f))
		}
	}
}
