// Command ffwdbench runs the benchmark grid at either measurement layer:
// the simulated machines of internal/simarch (the paper's tables and
// figures, plus the backend grid) or the real host via the runtime
// harness in internal/runtimebench.
//
// Usage:
//
//	ffwdbench -list
//	ffwdbench -exp fig9 -machine broadwell
//	ffwdbench -exp all
//	ffwdbench -exp fig14 -duration 2e6 -seed 7
//	ffwdbench -layer sim -exp grid -structures counter,set
//	ffwdbench -layer runtime -format json
//	ffwdbench -layer runtime -backends ffwd,rcl,lock-mcs -goroutines 1,2,4,8
//	ffwdbench -layer expiry -scenarios expiry-storm -goroutines 2,4
//	ffwdbench -layer expiry -modes wheel,sweep -capacity 4096 -format json
//
// The expiry layer sweeps the TTL/eviction scenarios (expiry storm,
// hot-key skew under eviction pressure, scan-heavy mix) against the
// delegated KV store, comparing wheel-driven server expiry with the
// client-driven SweepExpired baseline.
//
// Output is one aligned text table per experiment (the same rows/series
// the paper plots), CSV, an ASCII plot, or JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ffwd/internal/backend"
	"ffwd/internal/bench"
	"ffwd/internal/runtimebench"
	"ffwd/internal/simarch"
)

func main() {
	var (
		layer    = flag.String("layer", "sim", "measurement layer: sim (modelled machines), runtime (this host), or expiry (TTL/eviction scenarios on this host)")
		exp      = flag.String("exp", "", "experiment id (table1, fig1..fig18, grid, or 'all'); runtime layer always runs the grid")
		machine  = flag.String("machine", "broadwell", "machine model: broadwell, westmere, sandybridge, abudhabi")
		duration = flag.Float64("duration", 1e6, "simulated nanoseconds per configuration")
		seed     = flag.Uint64("seed", 1, "deterministic seed (simulation and workload streams)")
		list     = flag.Bool("list", false, "list experiments and exit")
		format   = flag.String("format", "table", "output format: table, csv, plot or json")

		// Grid options (runtime layer, and -exp grid on the sim layer).
		backends   = flag.String("backends", "", "comma-separated backend names (default: all registered)")
		structures = flag.String("structures", "counter,set,queue", "comma-separated structures: counter,set,queue,stack,kv")
		goroutines = flag.String("goroutines", "1,2,4", "comma-separated goroutine counts to sweep")
		measure    = flag.Duration("measure", 50*time.Millisecond, "runtime measurement window per cell")
		warmup     = flag.Duration("warmup", 0, "runtime warmup per cell (default measure/5)")
		keys       = flag.Uint64("keys", 1024, "key-space size for set/kv workloads")
		update     = flag.Float64("update", 0.3, "update ratio for set/kv workloads")
		dist       = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		skew       = flag.Float64("skew", 1.2, "zipf skew when -dist zipf")
		delay      = flag.Int("delay", 0, "inter-operation delay in PAUSE iterations")
		traceDir   = flag.String("trace-dir", "", "runtime layer: capture per-cell delegation traces (Chrome JSON) into this directory")

		// Expiry-layer options.
		scenarios  = flag.String("scenarios", "", "expiry layer: comma-separated scenarios (expiry-storm,hot-key-skew,scan-heavy; default all)")
		modes      = flag.String("modes", "", "expiry layer: comma-separated reclaim modes (wheel,sweep; default both)")
		capacity   = flag.Int("capacity", 1024, "expiry layer: store max-entries bound")
		ttlTicks   = flag.Uint64("ttl-ticks", 20, "expiry layer: base TTL in 100µs clock ticks")
		sweepEvery = flag.Int("sweep-every", 16, "expiry layer: ops between client-driven sweeps in sweep mode")
	)
	flag.Parse()

	if *list || (*exp == "" && *layer == "sim") {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Printf("  %-8s backend grid over the registry (%s)\n", "grid",
			strings.Join(backend.Names(), ", "))
		if *exp == "" && *layer == "sim" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> (or -exp all), or -layer runtime")
			os.Exit(2)
		}
		return
	}

	gridOpts := runtimebench.Options{
		Backends:    splitList(*backends),
		Structures:  parseStructures(*structures),
		Goroutines:  parseInts(*goroutines),
		Duration:    *measure,
		Warmup:      *warmup,
		KeySpace:    *keys,
		UpdateRatio: *update,
		Dist:        *dist,
		ZipfSkew:    *skew,
		DelayPauses: *delay,
		Seed:        int64(*seed),
		TraceDir:    *traceDir,
	}

	// Validate the experiment id up front: an unknown id must name the
	// available experiments, not fail obscurely (or run nothing).
	if *layer == "sim" && *exp != "all" && *exp != "grid" {
		known := false
		for _, id := range bench.IDs() {
			known = known || id == *exp
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *exp)
			for _, e := range bench.Experiments() {
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Title)
			}
			fmt.Fprintf(os.Stderr, "  %-8s backend grid over the registry\n", "grid")
			fmt.Fprintf(os.Stderr, "  %-8s every experiment above\n", "all")
			os.Exit(2)
		}
	}

	m, err := simarch.MachineByName(*machine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *layer {
	case "expiry":
		rep, err := runtimebench.RunExpiry(runtimebench.ExpiryOptions{
			Scenarios:  splitList(*scenarios),
			Modes:      splitList(*modes),
			Goroutines: parseInts(*goroutines),
			Duration:   *measure,
			Warmup:     *warmup,
			Capacity:   *capacity,
			TTLTicks:   *ttlTicks,
			SweepEvery: *sweepEvery,
			Seed:       int64(*seed),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emitReport(rep, *format)
	case "runtime":
		rep, err := runtimebench.Run(gridOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emitReport(rep, *format)
	case "sim":
		if *exp == "grid" {
			rep, err := runtimebench.SimGrid(gridOpts, m, *duration)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			emitReport(rep, *format)
			return
		}
		opts := bench.Options{Machine: m, DurationNS: *duration, Seed: *seed}
		ids := []string{*exp}
		if *exp == "all" {
			ids = bench.IDs()
		}
		for _, id := range ids {
			f, err := bench.Run(id, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			emitFigure(f, *format)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -layer %q (want sim, runtime or expiry)\n", *layer)
		os.Exit(2)
	}
}

// emitReport renders a grid report: JSON keeps the per-cell latency
// quantiles; the figure formats show the throughput series.
func emitReport(rep runtimebench.Report, format string) {
	if format == "json" {
		s, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(s)
		return
	}
	for _, f := range rep.Figures() {
		emitFigure(f, format)
	}
}

func emitFigure(f bench.Figure, format string) {
	switch format {
	case "csv":
		fmt.Print(bench.FormatCSV(f))
	case "plot":
		fmt.Println(bench.FormatPlot(f, 72, 20))
	case "json":
		fmt.Print(bench.FormatJSON(f))
	default:
		fmt.Println(bench.Format(f))
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseStructures(s string) []backend.Structure {
	var out []backend.Structure
	for _, p := range splitList(s) {
		st := backend.Structure(p)
		known := false
		for _, k := range backend.Structures {
			known = known || st == k
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown structure %q (want one of %v)\n", p, backend.Structures)
			os.Exit(2)
		}
		out = append(out, st)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad count %q\n", p)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}
