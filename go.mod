module ffwd

go 1.22
